"""Benchmark E10 -- the optimized placement core against the pre-refactor one.

The mapping phase dominates the evaluation campaign: every ready task is
placed by evaluating all clusters, and every evaluation used to pay an
O(P) ``np.partition`` over the processor free times per candidate
allocation size.  This benchmark replays a Figure-3-scale mapping
workload (10 concurrent random PTGs of 10/20/50 tasks on a full
Grid'5000 site) through

1. the optimized core (incrementally sorted timelines, batched EFT
   candidates, heap ready queue, memoized communication estimates), and
2. the pre-refactor reference kept in :mod:`repro.mapping._reference`,

checks that both produce **bit-identical schedules**, and asserts the
optimized core is at least 2x faster.  A ``BENCH_mapping_core.json``
summary records the wall times and the speedup.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_mapping_core.py``
or through pytest-benchmark with
``PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

try:
    from benchmarks.conftest import full_scale, write_result
except ModuleNotFoundError:  # standalone: python benchmarks/bench_mapping_core.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import full_scale, write_result
from repro.allocation.scrap import ScrapMaxAllocator
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.mapping._reference import (
    ReferenceReadyListMapper,
    reference_implementation,
)
from repro.mapping.base import AllocatedPTG
from repro.mapping.ready_list import ReadyListMapper
from repro.platform import grid5000

#: Number of timed repetitions per implementation (best-of is reported).
ROUNDS = 3


def _fig3_scale_inputs():
    """Allocated fig3-scale workloads: 10 random PTGs per seed, full site."""
    platform = grid5000.rennes()
    seeds = (2009, 2010, 2011) if full_scale() else (2009,)
    allocator = ScrapMaxAllocator()
    bundles = []
    for seed in seeds:
        ptgs = make_workload(WorkloadSpec(family="random", n_ptgs=10, seed=seed))
        bundles.append(
            [AllocatedPTG(p, allocator.allocate(p, platform, beta=1.0)) for p in ptgs]
        )
    return platform, bundles


def _time_mapper(make_mapper, bundles, platform, rounds=ROUNDS):
    """Best wall time of mapping every bundle, and the produced schedules."""
    best = float("inf")
    schedules = None
    for _ in range(rounds):
        mapper = make_mapper()
        tic = time.perf_counter()
        produced = [mapper.map(bundle, platform) for bundle in bundles]
        elapsed = time.perf_counter() - tic
        if elapsed < best:
            best = elapsed
            schedules = produced
    return best, schedules


def _assert_identical(fast_schedules, ref_schedules):
    for fast, ref in zip(fast_schedules, ref_schedules):
        assert len(fast) == len(ref)
        for entry in fast:
            other = ref.entry(entry.ptg_name, entry.task_id)
            assert entry.cluster_name == other.cluster_name
            assert entry.processors == other.processors
            assert entry.start == other.start
            assert entry.finish == other.finish


def run_mapping_core():
    """Time optimized vs reference mapping and verify identical output."""
    platform, bundles = _fig3_scale_inputs()
    n_tasks = sum(a.ptg.n_tasks for bundle in bundles for a in bundle)

    fast_time, fast_schedules = _time_mapper(ReadyListMapper, bundles, platform)
    with reference_implementation():
        ref_time, ref_schedules = _time_mapper(
            ReferenceReadyListMapper, bundles, platform
        )

    _assert_identical(fast_schedules, ref_schedules)
    return {
        "platform": platform.name,
        "bundles": len(bundles),
        "tasks_mapped": n_tasks,
        "optimized_seconds": fast_time,
        "reference_seconds": ref_time,
        "speedup": ref_time / fast_time,
        "tasks_per_second_optimized": n_tasks / fast_time,
    }


def bench_mapping_core(benchmark):
    """Old-vs-new placement core on a fig3-scale mapping workload."""
    summary = benchmark.pedantic(run_mapping_core, rounds=1, iterations=1)
    write_result("BENCH_mapping_core.json", json.dumps(summary, indent=2))
    assert summary["speedup"] >= 2.0, (
        f"optimized mapping core is only {summary['speedup']:.2f}x faster "
        f"({summary['optimized_seconds']:.3f}s vs {summary['reference_seconds']:.3f}s)"
    )


if __name__ == "__main__":
    result = run_mapping_core()
    print(json.dumps(result, indent=2))
    assert result["speedup"] >= 2.0, f"speedup {result['speedup']:.2f}x < 2x"
