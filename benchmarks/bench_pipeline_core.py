"""Benchmark E12 -- the combined allocation + mapping pipeline, old vs new.

``bench_mapping_core`` and ``bench_allocation_core`` measure the two
optimized hot paths in isolation; this benchmark measures what a campaign
actually pays: the **end-to-end two-step pipeline** (SCRAP-MAX allocation
followed by ready-list mapping) on a Figure-3-scale workload, replayed
through

1. the optimized cores (array-compiled allocation state + incremental
   timelines / batched EFT placement), sharing one ``DagArrays``
   compilation per PTG across both steps, and
2. the pre-refactor formulations kept in
   :mod:`repro.allocation._reference` and :mod:`repro.mapping._reference`,

checks that the final schedules are **bit-identical**, and asserts the
combined pipeline is at least 3x faster.  A ``BENCH_pipeline_core.json``
summary records the per-phase and total wall times.

Run standalone with
``PYTHONPATH=src python benchmarks/bench_pipeline_core.py`` or through
pytest-benchmark with
``PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

try:
    from benchmarks.conftest import full_scale, write_result
except ModuleNotFoundError:  # standalone: python benchmarks/bench_pipeline_core.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import full_scale, write_result
from repro.allocation._reference import run_reference_allocation
from repro.allocation.iterative import LevelConstraint, run_iterative_allocation
from repro.allocation.reference import ReferenceCluster
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.mapping._reference import (
    ReferenceReadyListMapper,
    reference_implementation,
)
from repro.mapping.base import AllocatedPTG
from repro.mapping.ready_list import ReadyListMapper
from repro.platform import grid5000

#: Number of timed repetitions per implementation (best-of is reported).
ROUNDS = 3

#: The constraint the paper's concurrent scheduler applies per application.
BETA = 0.6


def _fig3_scale_inputs():
    """Fig3-scale workload bundles: 10 random PTGs per seed, full site."""
    platform = grid5000.rennes()
    seeds = (2009, 2010, 2011) if full_scale() else (2009, 2010)
    bundles = [
        make_workload(WorkloadSpec(family="random", n_ptgs=10, seed=seed))
        for seed in seeds
    ]
    return platform, bundles


def _pipeline(allocation_loop, make_mapper, bundles, platform, reference):
    """Allocate (SCRAP-MAX) then map (ready list) every bundle."""
    power = platform.total_power_gflops
    schedules = []
    for ptgs in bundles:
        allocated = []
        for ptg in ptgs:
            allocation, _ = allocation_loop(
                ptg, platform, reference, BETA, LevelConstraint(BETA, power)
            )
            allocated.append(AllocatedPTG(ptg, allocation))
        schedules.append(make_mapper().map(allocated, platform))
    return schedules


def _time_pipeline(allocation_loop, make_mapper, bundles, platform, reference):
    """Best wall time of the full pipeline, and the produced schedules."""
    best = float("inf")
    schedules = None
    for _ in range(ROUNDS):
        tic = time.perf_counter()
        produced = _pipeline(allocation_loop, make_mapper, bundles, platform, reference)
        elapsed = time.perf_counter() - tic
        if elapsed < best:
            best = elapsed
            schedules = produced
    return best, schedules


def _assert_identical(fast_schedules, ref_schedules):
    for fast, ref in zip(fast_schedules, ref_schedules):
        assert len(fast) == len(ref)
        for entry in fast:
            other = ref.entry(entry.ptg_name, entry.task_id)
            assert entry.cluster_name == other.cluster_name
            assert entry.processors == other.processors
            assert entry.start == other.start
            assert entry.finish == other.finish


def run_pipeline_core():
    """Time the optimized vs reference end-to-end pipeline."""
    platform, bundles = _fig3_scale_inputs()
    reference = ReferenceCluster.of(platform)
    n_tasks = sum(p.n_tasks for bundle in bundles for p in bundle)

    fast_time, fast_schedules = _time_pipeline(
        run_iterative_allocation, ReadyListMapper, bundles, platform, reference
    )
    with reference_implementation():
        ref_time, ref_schedules = _time_pipeline(
            run_reference_allocation,
            ReferenceReadyListMapper,
            bundles,
            platform,
            reference,
        )

    _assert_identical(fast_schedules, ref_schedules)
    return {
        "platform": platform.name,
        "bundles": len(bundles),
        "tasks_scheduled": n_tasks,
        "beta": BETA,
        "optimized_seconds": fast_time,
        "reference_seconds": ref_time,
        "speedup": ref_time / fast_time,
        "tasks_per_second_optimized": n_tasks / fast_time,
    }


def bench_pipeline_core(benchmark):
    """Old-vs-new end-to-end pipeline on a fig3-scale workload."""
    summary = benchmark.pedantic(run_pipeline_core, rounds=1, iterations=1)
    write_result("BENCH_pipeline_core.json", json.dumps(summary, indent=2))
    assert summary["speedup"] >= 3.0, (
        f"optimized pipeline is only {summary['speedup']:.2f}x faster "
        f"({summary['optimized_seconds']:.3f}s vs {summary['reference_seconds']:.3f}s)"
    )


if __name__ == "__main__":
    result = run_pipeline_core()
    print(json.dumps(result, indent=2))
    assert result["speedup"] >= 3.0, f"speedup {result['speedup']:.2f}x < 3x"
