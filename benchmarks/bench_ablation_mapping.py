"""Benchmark E6 -- Section 5 ablation: ready-list ordering vs global ordering.

Reproduces the Figure 1 argument of the paper: ordering only the *ready*
tasks (by bottom level) prevents a small application from being postponed
behind the whole task list of larger competitors, which a global
bottom-level ordering of the aggregated applications does not.

The workload therefore mixes several large applications with one small
one; the quantity of interest is the completion time of the small
application under each mapping procedure (plus the overall unfairness and
batch makespan for context).
"""

from benchmarks.conftest import campaign_scale, write_result
from repro.allocation.scrap import ScrapMaxAllocator
from repro.constraints.strategies import EqualShareStrategy
from repro.experiments.runner import compute_own_makespans
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.mapping.global_order import GlobalOrderMapper
from repro.mapping.ready_list import ReadyListMapper
from repro.metrics.fairness import slowdowns, unfairness
from repro.scheduler.concurrent import ConcurrentScheduler
from repro.simulate.executor import ScheduleExecutor
from repro.utils.tables import format_table


def _mixed_workload(seed, max_tasks):
    """Several large applications plus one deliberately small one."""
    large = make_workload(
        WorkloadSpec("random", n_ptgs=5, seed=900 + seed, max_tasks=max_tasks)
    )
    small = make_workload(WorkloadSpec("random", n_ptgs=1, seed=500 + seed, max_tasks=10))[0]
    return large + [small], small.name


def run_ablation():
    scale = campaign_scale()
    platform = scale["platforms"][0]
    rows = []
    for seed in range(scale["workloads_per_point"]):
        workload, small_name = _mixed_workload(seed, scale["max_tasks"])
        own = compute_own_makespans(workload, platform)
        executor = ScheduleExecutor(platform)
        for mapper_name, mapper in (
            ("ready-list", ReadyListMapper()),
            ("global-order", GlobalOrderMapper()),
        ):
            scheduler = ConcurrentScheduler(
                EqualShareStrategy(), allocator=ScrapMaxAllocator(), mapper=mapper
            )
            planned = scheduler.schedule(workload, platform)
            report = executor.execute(workload, planned.schedule)
            multi = report.makespans()
            sd = slowdowns(own, multi)
            rows.append(
                {
                    "seed": seed,
                    "mapper": mapper_name,
                    "unfairness": unfairness(sd),
                    "batch_makespan": report.global_makespan(),
                    "small_app_makespan": multi[small_name],
                }
            )
    return rows


def bench_ablation_mapping(benchmark):
    """Ready-list vs global-order mapping with equal-share constraints."""
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    def mean(name, key):
        values = [r[key] for r in rows if r["mapper"] == name]
        return sum(values) / len(values)

    table = format_table(
        ["mapper", "mean unfairness", "mean batch makespan", "small app makespan"],
        [
            [
                name,
                mean(name, "unfairness"),
                mean(name, "batch_makespan"),
                mean(name, "small_app_makespan"),
            ]
            for name in ("ready-list", "global-order")
        ],
        title=(
            "Ablation: mapping task ordering "
            "(5 large + 1 small random PTGs, ES constraints)"
        ),
    )
    write_result("ablation_mapping.txt", table)

    # the Figure 1 claim: the ready-task ordering does not postpone the
    # small application behind its large competitors
    assert mean("ready-list", "small_app_makespan") <= (
        mean("global-order", "small_app_makespan") * 1.05
    )
    # and it does not inflate the overall batch makespan
    assert mean("ready-list", "batch_makespan") <= (
        mean("global-order", "batch_makespan") * 1.15
    )
