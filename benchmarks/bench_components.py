"""Micro-benchmarks of the scheduling components.

Not part of the paper's evaluation, but useful to keep an eye on the
cost of the building blocks (allocation, mapping, simulation) and to
catch algorithmic regressions: the whole point of a simulation-based
study is being able to run hundreds of scenarios quickly.
"""

import numpy as np

from repro.allocation.scrap import ScrapMaxAllocator
from repro.dag.generator import RandomPTGConfig, generate_random_ptg
from repro.mapping.base import AllocatedPTG
from repro.mapping.ready_list import ReadyListMapper
from repro.platform import grid5000
from repro.scheduler.concurrent import ConcurrentScheduler
from repro.constraints.strategies import EqualShareStrategy
from repro.simulate.executor import ScheduleExecutor


def _workload(n_apps=6, n_tasks=50, seed=0):
    rng = np.random.default_rng(seed)
    return [
        generate_random_ptg(rng, RandomPTGConfig(n_tasks=n_tasks), name=f"micro-{i}")
        for i in range(n_apps)
    ]


def bench_generator_50_tasks(benchmark):
    """Generation of a 50-task random PTG."""
    rng = np.random.default_rng(1)

    def build():
        return generate_random_ptg(rng, RandomPTGConfig(n_tasks=50))

    graph = benchmark(build)
    assert len(graph.real_tasks()) == 50


def bench_scrap_max_allocation_50_tasks(benchmark):
    """SCRAP-MAX allocation of one 50-task PTG on the Rennes subset."""
    platform = grid5000.rennes()
    ptg = _workload(n_apps=1, n_tasks=50, seed=2)[0]
    allocator = ScrapMaxAllocator()

    allocation = benchmark(lambda: allocator.allocate(ptg, platform, beta=0.25))
    assert len(allocation) == ptg.n_tasks


def bench_ready_list_mapping_300_tasks(benchmark):
    """Concurrent mapping of 6 x 50-task PTGs on the Rennes subset."""
    platform = grid5000.rennes()
    workload = _workload(n_apps=6, n_tasks=50, seed=3)
    allocator = ScrapMaxAllocator()
    allocated = [
        AllocatedPTG(p, allocator.allocate(p, platform, beta=1 / 6)) for p in workload
    ]
    mapper = ReadyListMapper()

    schedule = benchmark.pedantic(
        lambda: mapper.map(allocated, platform), rounds=3, iterations=1
    )
    assert len(schedule) == sum(p.n_tasks for p in workload)


def bench_simulated_execution_300_tasks(benchmark):
    """Discrete-event execution of the 6 x 50-task concurrent schedule."""
    platform = grid5000.rennes()
    workload = _workload(n_apps=6, n_tasks=50, seed=4)
    planned = ConcurrentScheduler(EqualShareStrategy()).schedule(workload, platform)
    executor = ScheduleExecutor(platform)

    report = benchmark.pedantic(
        lambda: executor.execute(workload, planned.schedule), rounds=3, iterations=1
    )
    assert len(report.records) == sum(p.n_tasks for p in workload)
