"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The
default scale is laptop-sized (a few workloads, a subset of the
platforms); set ``REPRO_BENCH_FULL=1`` to run the paper-sized campaign
(25 workloads per point, the five PTG counts, all four Grid'5000
subsets -- expect it to run for a long time).

Each benchmark writes its rendered result to ``benchmarks/results/`` and
prints it, so ``pytest benchmarks/ --benchmark-only -s`` shows the
regenerated rows next to pytest-benchmark's timing table.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.platform import grid5000

#: Directory where the rendered tables / figure series are written.
RESULTS_DIR = Path(__file__).parent / "results"


def full_scale() -> bool:
    """True when the paper-sized campaign is requested."""
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "no")


def campaign_scale() -> dict:
    """Scale parameters shared by the figure benchmarks."""
    if full_scale():
        return {
            "ptg_counts": (2, 4, 6, 8, 10),
            "workloads_per_point": 25,
            "platforms": grid5000.all_sites(),
            "max_tasks": None,
        }
    return {
        "ptg_counts": (2, 4, 8),
        "workloads_per_point": int(os.environ.get("REPRO_BENCH_SEEDS", "2")),
        "platforms": [grid5000.lille(), grid5000.sophia()],
        "max_tasks": 20,
    }


def write_result(name: str, text: str) -> Path:
    """Persist the rendered output of one benchmark and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")
    return path


@pytest.fixture
def scale():
    """The benchmark scale parameters (reduced or paper-sized)."""
    return campaign_scale()
