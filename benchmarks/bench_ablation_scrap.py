"""Benchmark E7 -- Section 4 ablation: SCRAP vs SCRAP-MAX.

The paper recalls (from the authors' PDCS'07 work) that both procedures
respect the resource constraint, but SCRAP's global-area formulation can
concentrate large allocations on a few tasks, postponing ready tasks at
mapping time, while SCRAP-MAX's per-level formulation avoids that.  This
benchmark measures constraint respect and resulting makespans for both.
"""

from benchmarks.conftest import campaign_scale, write_result
from repro.allocation.scrap import ScrapAllocator, ScrapMaxAllocator
from repro.constraints.strategies import EqualShareStrategy
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.scheduler.concurrent import ConcurrentScheduler
from repro.simulate.executor import ScheduleExecutor
from repro.utils.tables import format_table


def run_ablation():
    scale = campaign_scale()
    platform = scale["platforms"][0]
    rows = []
    for seed in range(scale["workloads_per_point"]):
        workload = make_workload(
            WorkloadSpec("random", n_ptgs=4, seed=700 + seed, max_tasks=scale["max_tasks"])
        )
        executor = ScheduleExecutor(platform)
        for name, allocator_cls in (("SCRAP", ScrapAllocator), ("SCRAP-MAX", ScrapMaxAllocator)):
            allocator = allocator_cls()
            scheduler = ConcurrentScheduler(EqualShareStrategy(), allocator=allocator)
            planned = scheduler.schedule(workload, platform)
            respected = all(
                allocator_cls.respects_constraint(planned.allocations[p.name], platform)
                for p in workload
            )
            report = executor.execute(workload, planned.schedule)
            rows.append(
                {
                    "seed": seed,
                    "procedure": name,
                    "respected": respected,
                    "batch_makespan": report.global_makespan(),
                    "total_ref_procs": sum(
                        sum(planned.allocations[p.name].as_dict().values())
                        for p in workload
                    ),
                }
            )
    return rows


def bench_ablation_scrap(benchmark):
    """SCRAP vs SCRAP-MAX under equal-share constraints."""
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    def mean(name, key):
        values = [r[key] for r in rows if r["procedure"] == name]
        return sum(values) / len(values)

    def respect_rate(name):
        values = [r["respected"] for r in rows if r["procedure"] == name]
        return sum(values) / len(values)

    table = format_table(
        ["procedure", "constraint respected", "mean batch makespan", "mean allocated ref procs"],
        [
            [name, respect_rate(name), mean(name, "batch_makespan"), mean(name, "total_ref_procs")]
            for name in ("SCRAP", "SCRAP-MAX")
        ],
        title="Ablation: SCRAP vs SCRAP-MAX (4 concurrent random PTGs, ES constraints)",
    )
    write_result("ablation_scrap.txt", table)

    # both procedures respect their constraint in (nearly) every scenario,
    # mirroring the 99% figure quoted in Section 4 of the paper
    assert respect_rate("SCRAP") >= 0.99
    assert respect_rate("SCRAP-MAX") >= 0.99
