"""Benchmark -- reactive schedule repair vs cold re-scheduling the tail.

When a fault kills tasks mid-run, the reactive repair pass
(:func:`repro.faults.repair_schedule`) keeps every finished placement,
re-maps only the killed tasks and the not-yet-started tail, and reuses
the allocations already computed.  The alternative a resilient harness
would otherwise fall back to is a **cold re-schedule**: run the full
two-step pipeline (allocation + mapping) from scratch over the affected
applications.

This benchmark strikes a mid-makespan outage into a planned multi-site
schedule and times both recovery paths.  The repaired schedule must be
validator-clean in perturbed-platform mode, and the repair pass must
cost at most **1.5x** the cold re-schedule of the affected tail -- the
repair does strictly less scheduling work, so anything above that bound
means the recovery path itself regressed.

Run standalone with
``PYTHONPATH=src python benchmarks/bench_faults.py`` or through
pytest-benchmark with
``PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import gc
import json
import sys
import time
from pathlib import Path

try:
    from benchmarks.conftest import full_scale, write_result
except ModuleNotFoundError:  # standalone: python benchmarks/bench_faults.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import full_scale, write_result
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.faults.repair import repair_schedule
from repro.faults.timeline import DownWindow, FaultTimeline
from repro.platform import grid5000
from repro.scheduler.concurrent import ConcurrentScheduler
from repro.validate import validate_schedule

#: Concurrent applications in the struck workload.
N_PTGS_FULL = 60
N_PTGS_REDUCED = 30

#: The outage: at 30% of the planned makespan, half of every cluster's
#: processors drop out for 20% of the makespan.
STRIKE_AT = 0.30
STRIKE_SPAN = 0.20


def _mid_run_outage(platform, schedule) -> FaultTimeline:
    """Half of every cluster down across the mid-makespan band."""
    makespan = max(entry.finish for entry in schedule)
    start = STRIKE_AT * makespan
    end = start + STRIKE_SPAN * makespan
    windows = tuple(
        DownWindow(
            cluster.name,
            tuple(range(cluster.num_processors // 2)),
            start,
            end,
        )
        for cluster in platform
    )
    return FaultTimeline(platform.name, windows=windows)


def _affected_names(planned, repaired) -> set:
    """Applications whose placements changed under the repair."""
    rows = lambda schedule: {
        (e.ptg_name, e.task_id): (e.cluster_name, e.processors, e.start, e.finish)
        for e in schedule
    }
    before, after = rows(planned), rows(repaired)
    return {key[0] for key in before if before[key] != after.get(key)}


def run_faults_core():
    """Time the repair pass against a cold re-schedule of the tail."""
    n_ptgs = N_PTGS_FULL if full_scale() else N_PTGS_REDUCED
    platform = grid5000.composed()
    workload = make_workload(
        WorkloadSpec(family="mixed", n_ptgs=n_ptgs, seed=2009, max_tasks=30)
    )
    scheduler = ConcurrentScheduler()
    planned = scheduler.schedule(workload, platform).schedule
    timeline = _mid_run_outage(platform, planned)

    # -- reactive repair (optimized recovery path) ---------------------- #
    gc.collect()
    tic = time.perf_counter()
    outcome = repair_schedule(workload, planned, platform, timeline)
    repair_seconds = time.perf_counter() - tic

    report = validate_schedule(
        outcome.schedule, ptgs=workload, platform=platform, faults=timeline
    )
    assert report.ok, report.summary()

    # -- cold baseline: full pipeline over the affected applications ---- #
    affected = _affected_names(planned, outcome.schedule)
    assert affected, "the outage must disturb at least one application"
    tail = [ptg for ptg in workload if ptg.name in affected]
    gc.collect()
    tic = time.perf_counter()
    ConcurrentScheduler().schedule(tail, platform)
    cold_seconds = time.perf_counter() - tic

    metrics = outcome.metrics()
    return {
        "platform": platform.name,
        "applications": n_ptgs,
        "affected_applications": len(affected),
        "tasks_scheduled": len(planned),
        "killed_tasks": metrics["killed_tasks"],
        "makespan_inflation": metrics["makespan_inflation"],
        "recovery_latency": metrics["recovery_latency"],
        "work_lost": metrics["work_lost"],
        "work_reexecuted": metrics["work_reexecuted"],
        "repair_seconds": repair_seconds,
        "cold_reschedule_seconds": cold_seconds,
        "repair_over_cold": repair_seconds / cold_seconds,
    }


def bench_faults(benchmark):
    """Reactive repair vs cold tail re-schedule (<= 1.5x gate)."""
    summary = benchmark.pedantic(run_faults_core, rounds=1, iterations=1)
    write_result("BENCH_faults.json", json.dumps(summary, indent=2))
    assert summary["repair_over_cold"] <= 1.5, (
        f"repair pass costs {summary['repair_over_cold']:.2f}x the cold "
        f"re-schedule of the affected tail "
        f"({summary['repair_seconds']:.3f}s vs "
        f"{summary['cold_reschedule_seconds']:.3f}s)"
    )


if __name__ == "__main__":
    result = run_faults_core()
    print(json.dumps(result, indent=2))
    assert result["repair_over_cold"] <= 1.5, (
        f"repair/cold ratio {result['repair_over_cold']:.2f}x > 1.5x"
    )
