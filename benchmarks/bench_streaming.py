"""Benchmark E13 -- the event-driven streaming engine vs naive replay.

The online scheduler used to be a *batch replay*: the only way to follow
a growing arrival stream (a live submission queue, a resumed sweep, a
monitoring loop asking "where are we now?" after every batch) was to
re-replay the whole prefix through
:class:`repro.scheduler._reference.ReferenceOnlineScheduler` -- whose
per-admission completion lookup additionally re-scans every entry placed
so far, making each replay quadratic in the number of submissions.

This benchmark drives the acceptance workload -- a seeded Poisson stream
of 1000 PTG submissions on the composed 11-cluster Grid'5000 platform --
through both paths:

1. **event-driven** (optimized): one long-lived
   :class:`repro.streaming.engine.StreamSession` fed the stream in
   batches, scheduling each submission exactly once;
2. **naive replay** (baseline): after every batch, the preserved
   pre-refactor scheduler re-replays the full prefix from scratch.

The final schedules must be **bit-identical** (the rework is a pure
performance refactor) and the event-driven loop must be at least **3x**
faster; a ``BENCH_streaming.json`` summary also records the single-pass
comparison (same stream, one batch), where the only saving is the
removed quadratic re-scan.

Run standalone with
``PYTHONPATH=src python benchmarks/bench_streaming.py`` or through
pytest-benchmark with
``PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import gc
import json
import sys
import time
from pathlib import Path

try:
    from benchmarks.conftest import full_scale, write_result
except ModuleNotFoundError:  # standalone: python benchmarks/bench_streaming.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import full_scale, write_result
from repro.platform import grid5000
from repro.scheduler._reference import ReferenceOnlineScheduler
from repro.streaming.engine import StreamSession
from repro.streaming.spec import ArrivalSpec, generate_arrivals

#: The acceptance workload: >= 1000 Poisson submissions on the composed
#: multi-site platform (the reduced scale keeps CI wall time in check
#: while preserving the >= 3x verdict).
N_ARRIVALS_FULL = 1000
N_ARRIVALS_REDUCED = 600

#: Number of batches of the "follow the stream" scenario: after every
#: batch the naive path re-replays the whole prefix, the session just
#: continues.  Ten batches keep the prefix-replay overhead (~5.5x the
#: single pass) independent of the stream length.
N_BATCHES = 10

#: Mean inter-arrival time (seconds); ~12s keeps the system stably
#: loaded (a handful of concurrent applications) on the composed site.
MEAN_GAP = 12.0


def _assert_identical(fast_schedule, ref_schedule):
    assert len(fast_schedule) == len(ref_schedule), "schedules differ in size"
    for entry in fast_schedule:
        other = ref_schedule.entry(entry.ptg_name, entry.task_id)
        assert entry.cluster_name == other.cluster_name, (entry, other)
        assert entry.processors == other.processors, (entry, other)
        assert entry.start == other.start, (entry, other)
        assert entry.finish == other.finish, (entry, other)


def run_streaming_core():
    """Time the event-driven session against the naive prefix replay."""
    n_arrivals = N_ARRIVALS_FULL if full_scale() else N_ARRIVALS_REDUCED
    platform = grid5000.composed()
    spec = ArrivalSpec(
        process="poisson",
        rate=1.0 / MEAN_GAP,
        n_arrivals=n_arrivals,
        seed=2009,
        family="random",
        max_tasks=10,
    )
    stream = generate_arrivals(spec)
    batch_size = max(1, n_arrivals // N_BATCHES)
    batches = [
        stream[i:i + batch_size] for i in range(0, len(stream), batch_size)
    ]

    # Each phase is measured after dropping the previous phase's objects
    # and collecting: a 12k-entry schedule keeps ~10^6 objects alive, and
    # letting them pile up distorts later measurements through GC
    # pressure (observed: up to 40% on the last phase measured).

    # -- single pass: the whole stream in one batch each ---------------- #
    gc.collect()
    tic = time.perf_counter()
    single_session = StreamSession(platform)
    single_session.feed(stream)
    single_fast = time.perf_counter() - tic
    del single_session
    gc.collect()
    tic = time.perf_counter()
    single_ref_result = ReferenceOnlineScheduler().schedule(stream, platform)
    single_ref = time.perf_counter() - tic
    del single_ref_result
    gc.collect()

    # -- event-driven: one session, fed batch by batch ------------------ #
    tic = time.perf_counter()
    session = StreamSession(platform)
    for batch in batches:
        session.feed(batch)
    fast_result = session.result()
    fast_seconds = time.perf_counter() - tic
    gc.collect()

    # -- naive replay: re-run the whole prefix after every batch -------- #
    tic = time.perf_counter()
    ref_result = None
    for end in range(batch_size, len(stream) + batch_size, batch_size):
        prefix = stream[:end]
        ref_result = ReferenceOnlineScheduler().schedule(prefix, platform)
    replay_seconds = time.perf_counter() - tic

    _assert_identical(fast_result.schedule, ref_result.schedule)
    assert fast_result.makespans() == ref_result.makespans()

    tasks = len(fast_result.schedule)
    return {
        "platform": platform.name,
        "arrivals": n_arrivals,
        "batch_size": batch_size,
        "tasks_scheduled": tasks,
        "horizon_seconds": fast_result.horizon(),
        "event_driven_seconds": fast_seconds,
        "naive_replay_seconds": replay_seconds,
        "speedup": replay_seconds / fast_seconds,
        "single_pass_optimized_seconds": single_fast,
        "single_pass_reference_seconds": single_ref,
        "single_pass_speedup": single_ref / single_fast,
        "submissions_per_second_event_driven": n_arrivals / fast_seconds,
    }


def bench_streaming(benchmark):
    """Event-driven stream following vs naive prefix replay (>= 3x gate)."""
    summary = benchmark.pedantic(run_streaming_core, rounds=1, iterations=1)
    write_result("BENCH_streaming.json", json.dumps(summary, indent=2))
    assert summary["speedup"] >= 3.0, (
        f"event-driven loop is only {summary['speedup']:.2f}x faster than the "
        f"naive replay ({summary['event_driven_seconds']:.2f}s vs "
        f"{summary['naive_replay_seconds']:.2f}s)"
    )
    # the single pass only saves the quadratic re-scan, which is small at
    # reduced scale: gate against a material regression, not noise
    assert summary["single_pass_speedup"] >= 0.85, (
        f"single-pass regression: {summary['single_pass_speedup']:.2f}x"
    )


if __name__ == "__main__":
    result = run_streaming_core()
    print(json.dumps(result, indent=2))
    assert result["speedup"] >= 3.0, f"speedup {result['speedup']:.2f}x < 3x"
