"""Benchmark E14 -- the admission daemon under concurrent tenant load.

Drives hundreds of concurrent tenants through the daemon's in-process
transport (:meth:`repro.service.app.ServiceApp.handle` -- no sockets,
so the numbers measure admission, not TCP): every tenant is an asyncio
client submitting its own small PTG stream and racing all the others on
one event loop, exactly the concurrency structure ``repro-ptg serve``
runs behind HTTP.

Reported (and persisted as ``BENCH_service.json``): p50/p99 admission
latency from the daemon's own ``service.admission_latency`` histogram,
admission throughput, and the SLO verdict.  The gate: the daemon must
sustain >= 200 concurrent tenants with a p99 admission latency under
the scenario's spec'd SLO and zero SLO violations above the p99 bound,
with every submission admitted exactly once.

Run standalone with
``PYTHONPATH=src python benchmarks/bench_service.py`` or through
pytest-benchmark with
``PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from pathlib import Path

try:
    from benchmarks.conftest import full_scale, write_result
except ModuleNotFoundError:  # standalone: python benchmarks/bench_service.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import full_scale, write_result
from repro.dag.graph import PTG
from repro.dag.io import ptg_to_dict
from repro.dag.task import Task
from repro.scenarios.spec import ScenarioSpec
from repro.service.app import Request, ServiceApp

#: Concurrent tenants (the acceptance floor is 200).
N_TENANTS_FULL = 400
N_TENANTS_REDUCED = 200

#: Submissions per tenant.
ARRIVALS_PER_TENANT_FULL = 4
ARRIVALS_PER_TENANT_REDUCED = 3

#: The spec'd admission-latency SLO (seconds) the p99 is gated against.
#: Latency is measured enqueue-to-admitted, so with every tenant
#: submitting at once it includes the queueing behind all other tenants.
SLO_SECONDS = 2.5


def _tenant_ptg(tenant: int, index: int) -> PTG:
    """One tiny two-task chain, uniquely named per (tenant, submission)."""
    graph = PTG(f"t{tenant:03d}-app-{index}")
    graph.add_task(Task(0, flops=4e9, alpha=0.1, data_elements=4e6))
    graph.add_task(Task(1, flops=4e9, alpha=0.1, data_elements=4e6))
    graph.add_edge(0, 1, 3.2e7)
    graph.validate()
    return graph


def run_service_core():
    """Run the concurrent-tenant workload and summarise the daemon's meters."""
    n_tenants = N_TENANTS_FULL if full_scale() else N_TENANTS_REDUCED
    per_tenant = (
        ARRIVALS_PER_TENANT_FULL if full_scale() else ARRIVALS_PER_TENANT_REDUCED
    )
    spec = ScenarioSpec.from_dict(
        {
            "platform": "lille",
            "pipeline": {"allocator": "hcpa", "mapper": "ready-list"},
            "strategies": ["ES"],
            "service": {"queue_depth": per_tenant + 1, "slo": SLO_SECONDS},
        }
    )
    # serialise the request bodies up front: the bench times the daemon,
    # not the client-side PTG encoding
    requests = [
        [
            Request(
                "POST",
                "/submit",
                body={
                    "tenant": f"tenant-{t:03d}",
                    "time": float(i * 30),
                    "ptg": ptg_to_dict(_tenant_ptg(t, i)),
                },
            )
            for i in range(per_tenant)
        ]
        for t in range(n_tenants)
    ]

    async def drive() -> dict:
        app = ServiceApp(spec)

        async def client(stream) -> None:
            for request in stream:
                response = await app.handle(request)
                assert response.status == 202, response.body
                await asyncio.sleep(0)  # yield: let workers interleave

        tic = time.perf_counter()
        await asyncio.gather(*(client(stream) for stream in requests))
        await app.quiesce()
        wall = time.perf_counter() - tic
        metrics = await app.handle(Request("GET", "/metrics"))
        await app.stop()
        body = metrics.body
        assert body["admissions"] == n_tenants * per_tenant
        return {
            "tenants": n_tenants,
            "arrivals_per_tenant": per_tenant,
            "admissions": body["admissions"],
            "wall_seconds": wall,
            "admissions_per_second": body["admissions"] / wall,
            "p50_admission_latency": body["p50_admission_latency"],
            "p99_admission_latency": body["p99_admission_latency"],
            "slo_seconds": SLO_SECONDS,
            "slo_violations": body["metrics"]["counters"].get(
                "service.slo_violations", 0.0
            ),
        }

    return asyncio.run(drive())


def _gate(summary: dict) -> None:
    assert summary["tenants"] >= 200, "acceptance floor is 200 tenants"
    assert summary["p99_admission_latency"] < summary["slo_seconds"], (
        f"p99 admission latency {summary['p99_admission_latency']:.3f}s breaches "
        f"the {summary['slo_seconds']}s SLO under {summary['tenants']} tenants"
    )


def bench_service(benchmark):
    """>= 200 concurrent tenants, p99 admission latency under the SLO."""
    summary = benchmark.pedantic(run_service_core, rounds=1, iterations=1)
    write_result("BENCH_service.json", json.dumps(summary, indent=2))
    _gate(summary)


if __name__ == "__main__":
    result = run_service_core()
    write_result("BENCH_service.json", json.dumps(result, indent=2))
    _gate(result)
