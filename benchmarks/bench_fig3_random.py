"""Benchmark E3 -- Figure 3: the eight constraint strategies on random PTGs.

Regenerates both panels (unfairness and average relative makespan versus
the number of concurrent PTGs) and checks the qualitative conclusions the
paper draws from this figure:

* the selfish strategy's relative makespan degrades as the number of
  concurrent PTGs grows, while the constrained strategies stay close to
  the best schedule;
* the purely proportional strategies (PS-cp / PS-work) produce short but
  unfair schedules;
* the weighted strategies (in particular WPS-width and WPS-work) are
  fairer than the selfish baseline.
"""

from benchmarks.conftest import campaign_scale, write_result
from repro.experiments.figures import run_figure
from repro.experiments.reporting import render_campaign_summary, render_figure


def run_fig3():
    scale = campaign_scale()
    return run_figure(
        3,
        ptg_counts=scale["ptg_counts"],
        workloads_per_point=scale["workloads_per_point"],
        platforms=scale["platforms"],
        base_seed=2009,
        max_tasks=scale["max_tasks"],
    )


def bench_fig3_random(benchmark):
    """Regenerate Figure 3 (random PTGs)."""
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    text = render_figure(result) + "\n\n" + render_campaign_summary(result.campaign)
    write_result("fig3_random.txt", text)

    most = max(result.ptg_counts)
    # selfish relative makespan grows with the competition and ends up the worst
    s_series = result.relative_makespan["S"]
    assert s_series[-1] >= s_series[0] - 1e-9
    assert result.relative_makespan_at("S", most) >= max(
        result.relative_makespan_at(name, most)
        for name in ("ES", "WPS-work", "WPS-width")
    ) - 1e-9
    # the work-proportional strategy yields among the shortest schedules
    assert result.relative_makespan_at("PS-work", most) <= (
        result.relative_makespan_at("S", most)
    )
    # the weighted strategies improve fairness over the selfish baseline
    assert min(
        result.unfairness_at("WPS-width", most),
        result.unfairness_at("WPS-work", most),
        result.unfairness_at("ES", most),
    ) <= result.unfairness_at("S", most) * 1.1
    # sanity: every relative makespan is >= 1 and unfairness >= 0
    for name in result.strategies():
        assert all(v >= 1.0 - 1e-9 for v in result.relative_makespan[name])
        assert all(v >= 0.0 for v in result.unfairness[name])
