"""Benchmark E14 -- sub-millisecond admission: delta-EFT + batched kernels.

The admission hot path of the streaming engine compounds three fast
paths, each keeping its reference formulation switchable as a golden
fallback:

1. **delta-EFT** placement: the placement engine caches each cluster's
   sorted free-time frontier across admissions and prunes clusters whose
   lower bound already exceeds the best finish found so far, instead of
   fully evaluating every cluster in declaration order per task;
2. the **fused allocation loop**: incremental bottom-level propagation
   and freeze-skip replace the two full critical-path DPs per SCRAP
   iteration;
3. **batched multi-PTG kernels**: arrival batches are compiled into one
   shared ``DagArrays`` arena and their Amdahl allocation tables are
   swept in one stacked pass before admission starts.

This benchmark drives the streaming acceptance workload -- a seeded
Poisson stream of 1000 PTG submissions on the composed 11-cluster
Grid'5000 platform -- through a fully-optimized session (the production
defaults) and through the **full-pass path**: the preserved pre-refactor
reference implementations (`repro.mapping._reference`,
`repro.allocation._reference`), which re-run the scalar per-cluster EFT
scan and the dict-based per-iteration allocation DP for every admission,
with per-graph compilation.  The gate requires the optimized amortized
per-admission time to be at least **3x** better.  For transparency the
summary also times the intermediate fallback -- the PR 2/3 vectorized
cores with delta-EFT, the fused loop and batching disabled -- so the
increment of each layer is visible.  The schedules and per-application
makespans of all three runs must be bit-identical (the fast paths are
exact); ``BENCH_delta.json`` records the summary.

Run standalone with
``PYTHONPATH=src python benchmarks/bench_delta_eft.py`` or through
pytest-benchmark with
``PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import gc
import json
import sys
import time
from pathlib import Path

try:
    from benchmarks.conftest import full_scale, write_result
except ModuleNotFoundError:  # standalone: python benchmarks/bench_delta_eft.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import full_scale, write_result
from repro.allocation._reference import run_reference_allocation
from repro.allocation.iterative import LevelConstraint
from repro.allocation.reference import ReferenceCluster
from repro.allocation.scrap import ScrapMaxAllocator
from repro.mapping._reference import reference_implementation
from repro.platform import grid5000
from repro.streaming.engine import StreamSession
from repro.streaming.spec import ArrivalSpec, generate_arrivals

#: The acceptance workload: >= 1000 Poisson submissions on the composed
#: multi-site platform (the reduced scale keeps CI wall time in check
#: while preserving the >= 3x verdict).
N_ARRIVALS_FULL = 1000
N_ARRIVALS_REDUCED = 600

#: Mean inter-arrival time (seconds); ~12s keeps the system stably
#: loaded (a handful of concurrent applications) on the composed site.
MEAN_GAP = 12.0


class _FullPassAllocator(ScrapMaxAllocator):
    """SCRAP-MAX routed through the pre-refactor allocation loop."""

    def allocate(self, ptg, platform, beta=1.0):
        reference = ReferenceCluster.of(platform)
        constraint = LevelConstraint(beta, platform.total_power_gflops)
        allocation, stats = run_reference_allocation(
            ptg,
            platform,
            reference,
            beta,
            constraint,
            use_balance_stop=self.use_balance_stop,
            efficiency_threshold=self.efficiency_threshold,
        )
        self.last_stats = stats
        return allocation


def _assert_identical(fast_result, ref_result):
    fast_schedule, ref_schedule = fast_result.schedule, ref_result.schedule
    assert len(fast_schedule) == len(ref_schedule), "schedules differ in size"
    for entry in fast_schedule:
        other = ref_schedule.entry(entry.ptg_name, entry.task_id)
        assert entry.cluster_name == other.cluster_name, (entry, other)
        assert entry.processors == other.processors, (entry, other)
        assert entry.start == other.start, (entry, other)
        assert entry.finish == other.finish, (entry, other)
    assert fast_result.makespans() == ref_result.makespans()


def run_delta_core():
    """Time the optimized admission path against the full-pass reference."""
    n_arrivals = N_ARRIVALS_FULL if full_scale() else N_ARRIVALS_REDUCED
    platform = grid5000.composed()
    spec = ArrivalSpec(
        process="poisson",
        rate=1.0 / MEAN_GAP,
        n_arrivals=n_arrivals,
        seed=2009,
        family="random",
        max_tasks=10,
    )
    stream = generate_arrivals(spec)

    # -- optimized: delta-EFT + fused loop + batched kernels ------------ #
    gc.collect()
    tic = time.perf_counter()
    fast_session = StreamSession(platform)
    fast_session.feed(stream)
    fast_result = fast_session.result()
    fast_seconds = time.perf_counter() - tic
    del fast_session
    gc.collect()

    # -- intermediate fallback: PR 2/3 vectorized cores, this PR's fast -- #
    # -- paths disabled -------------------------------------------------- #
    tic = time.perf_counter()
    mid_session = StreamSession(
        platform,
        allocator=ScrapMaxAllocator(fast=False),
        delta=False,
        batch_compile=False,
    )
    mid_session.feed(stream)
    mid_result = mid_session.result()
    mid_seconds = time.perf_counter() - tic
    del mid_session
    gc.collect()

    # -- full pass: the preserved pre-refactor reference (scalar EFT ----- #
    # -- scan, dict-based allocation DP, per-graph compilation) ---------- #
    tic = time.perf_counter()
    with reference_implementation():
        ref_session = StreamSession(
            platform, allocator=_FullPassAllocator(), batch_compile=False
        )
        ref_session.feed(stream)
    ref_result = ref_session.result()
    ref_seconds = time.perf_counter() - tic

    _assert_identical(fast_result, mid_result)
    _assert_identical(fast_result, ref_result)

    tasks = len(fast_result.schedule)
    return {
        "platform": platform.name,
        "arrivals": n_arrivals,
        "tasks_scheduled": tasks,
        "horizon_seconds": fast_result.horizon(),
        "optimized_seconds": fast_seconds,
        "fast_cores_fallback_seconds": mid_seconds,
        "full_pass_seconds": ref_seconds,
        "speedup_vs_full_pass": ref_seconds / fast_seconds,
        "speedup_vs_fast_cores": mid_seconds / fast_seconds,
        "optimized_admission_ms": 1000.0 * fast_seconds / n_arrivals,
        "full_pass_admission_ms": 1000.0 * ref_seconds / n_arrivals,
    }


def bench_delta_eft(benchmark):
    """Delta-EFT + batched kernels vs the full-pass path (>= 3x gate)."""
    summary = benchmark.pedantic(run_delta_core, rounds=1, iterations=1)
    write_result("BENCH_delta.json", json.dumps(summary, indent=2))
    assert summary["speedup_vs_full_pass"] >= 3.0, (
        f"optimized admission is only {summary['speedup_vs_full_pass']:.2f}x "
        f"faster than the full-pass path ({summary['optimized_seconds']:.2f}s "
        f"vs {summary['full_pass_seconds']:.2f}s)"
    )
    # the intermediate fallback shares the vectorized cores, so the gap is
    # smaller: gate against a material regression, not noise
    assert summary["speedup_vs_fast_cores"] >= 1.2, (
        f"fast-cores regression: {summary['speedup_vs_fast_cores']:.2f}x"
    )


if __name__ == "__main__":
    result = run_delta_core()
    print(json.dumps(result, indent=2))
    assert result["speedup_vs_full_pass"] >= 3.0, (
        f"speedup {result['speedup_vs_full_pass']:.2f}x < 3x"
    )
