"""Benchmark E10 -- the columnar result store (repro.campaigns.colstore).

Builds a 50k-record synthetic result store, then compares the two read
paths the orchestrator exercises on every resume:

1. the pre-columnar baseline: parse every JSONL line and materialise
   every payload just to learn which shard keys are done,
2. the columnar path: ``compact`` the write-ahead log once, then answer
   the same question from the segment footers (no payload is decoded)
   and aggregate the store with the memory-bounded streaming summary.

The benchmark gates on a >= 2x speedup of the footer-index key scan over
the full JSONL parse and checks that the streaming aggregation peaks
below the full-load baseline (tracemalloc).  It writes a
``BENCH_exec.json`` summary with the wall times, the speedup, the peak
heap of both paths and the segment statistics.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
import tracemalloc

from benchmarks.conftest import write_result
from repro.campaigns.aggregate import StreamingAggregate, summarize_store
from repro.campaigns.colstore import ColumnStore
from repro.campaigns.store import STORE_FORMAT_VERSION, CampaignStore

#: Number of synthetic result records (the issue's acceptance scale).
RECORDS = int(os.environ.get("REPRO_BENCH_EXEC_RECORDS", "50000"))

STRATEGIES = ("S", "ES", "PS-work")


def _payload(i: int) -> dict:
    """One synthetic experiment record (floats dominate, as in real runs)."""
    return {
        "platform": f"site-{i % 4}",
        "n_ptgs": 2 + 2 * (i % 3),
        "workload_label": f"w{i:05d}",
        "own_makespans": {f"app{j}": 40.0 + (i % 97) * 0.25 + j for j in range(4)},
        "outcomes": {
            name: {
                "unfairness": 0.001 * ((i + k) % 151),
                "batch_makespan": 100.0 + ((i * 7 + k) % 211) * 0.5,
                "mean_application_makespan": 55.0 + ((i + 3 * k) % 83) * 0.75,
            }
            for k, name in enumerate(STRATEGIES)
        },
    }


def _build_store(root: str) -> CampaignStore:
    """Write RECORDS results as one buffered JSONL pass (synthetic WAL)."""
    store = CampaignStore(root)
    with open(store.results_path, "w", encoding="utf-8") as handle:
        for i in range(RECORDS):
            record = {
                "format_version": STORE_FORMAT_VERSION,
                "key": f"key{i:06d}",
                "payload": _payload(i),
            }
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return store


def _full_load_keys(store: CampaignStore) -> set:
    """The pre-columnar resume check: decode every payload for its key."""
    keys = set()
    with open(store.results_path, "r", encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            record["payload"]  # the baseline materialises the whole record
            keys.add(record["key"])
    return keys


def _full_load_summary(store: CampaignStore) -> dict:
    """The pre-columnar aggregation: every payload held in memory at once."""
    payloads = {}
    with open(store.results_path, "r", encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            payloads[record["key"]] = record["payload"]
    aggregate = StreamingAggregate()
    for payload in payloads.values():
        aggregate.add(payload)
    return aggregate.summary()


def _traced(fn, *args):
    """(result, seconds, peak_heap_bytes) of one call."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn(*args)
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak


def run_exec_store_bench() -> dict:
    root = tempfile.mkdtemp(prefix="bench-exec-store-")
    try:
        store = _build_store(root)
        wal_bytes = os.path.getsize(store.results_path)

        baseline_keys, baseline_scan_seconds, _ = _traced(_full_load_keys, store)
        baseline_summary, full_load_seconds, full_load_peak = _traced(
            _full_load_summary, store
        )

        start = time.perf_counter()
        view = ColumnStore(store)
        report = view.compact()
        compact_seconds = time.perf_counter() - start

        fresh = CampaignStore(root)
        footer_keys, footer_scan_seconds, _ = _traced(fresh.completed_keys)
        streaming_summary, streaming_seconds, streaming_peak = _traced(
            summarize_store, CampaignStore(root)
        )

        stat = ColumnStore(CampaignStore(root)).stat()
    finally:
        shutil.rmtree(root, ignore_errors=True)

    return {
        "records": RECORDS,
        "wal_bytes": wal_bytes,
        "keys_identical": footer_keys == baseline_keys,
        "summaries_identical": streaming_summary == baseline_summary,
        "full_parse_key_scan_seconds": round(baseline_scan_seconds, 3),
        "footer_key_scan_seconds": round(footer_scan_seconds, 3),
        "key_scan_speedup": round(baseline_scan_seconds / footer_scan_seconds, 2),
        "compact_seconds": round(compact_seconds, 3),
        "segments": stat["segments"],
        "segment_bytes": stat["segment_bytes"],
        "full_load_summary_seconds": round(full_load_seconds, 3),
        "streaming_summary_seconds": round(streaming_seconds, 3),
        "full_load_peak_mb": round(full_load_peak / 1e6, 2),
        "streaming_peak_mb": round(streaming_peak / 1e6, 2),
    }


def bench_exec_store(benchmark):
    """Columnar key scan / streaming summary vs. the JSONL full-load path."""
    summary = benchmark.pedantic(run_exec_store_bench, rounds=1, iterations=1)
    write_result("BENCH_exec.json", json.dumps(summary, indent=2, sort_keys=True))

    assert summary["keys_identical"]
    assert summary["summaries_identical"]
    # the footer index must beat the full JSONL parse by at least 2x
    assert summary["key_scan_speedup"] >= 2.0, summary
    # streaming aggregation must stay under the full-load memory peak
    assert summary["streaming_peak_mb"] < summary["full_load_peak_mb"], summary


if __name__ == "__main__":
    print(json.dumps(run_exec_store_bench(), indent=2, sort_keys=True))
