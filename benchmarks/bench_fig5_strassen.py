"""Benchmark E5 -- Figure 5: the constraint strategies on Strassen PTGs.

All Strassen PTGs share the same shape (25 tasks, same maximal width), so
the width-based strategies degenerate to ES and are excluded, exactly as
in the paper.  The remaining comparison checks that WPS-work keeps a
clear makespan advantage over ES while staying reasonably fair.
"""

from benchmarks.conftest import campaign_scale, write_result
from repro.experiments.figures import run_figure
from repro.experiments.reporting import render_campaign_summary, render_figure


def run_fig5():
    scale = campaign_scale()
    return run_figure(
        5,
        ptg_counts=scale["ptg_counts"],
        workloads_per_point=scale["workloads_per_point"],
        platforms=scale["platforms"],
        base_seed=2009,
    )


def bench_fig5_strassen(benchmark):
    """Regenerate Figure 5 (Strassen PTGs)."""
    result = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    text = render_figure(result) + "\n\n" + render_campaign_summary(result.campaign)
    write_result("fig5_strassen.txt", text)

    # width-based strategies are excluded for Strassen
    assert "PS-width" not in result.strategies()
    assert "WPS-width" not in result.strategies()
    assert set(result.strategies()) == {"S", "ES", "PS-cp", "PS-work", "WPS-cp", "WPS-work"}

    most = max(result.ptg_counts)
    for name in result.strategies():
        assert all(v >= 1.0 - 1e-9 for v in result.relative_makespan[name])
        assert all(v >= 0.0 for v in result.unfairness[name])
    # WPS-work keeps a makespan advantage (or at least parity) over ES
    assert result.relative_makespan_at("WPS-work", most) <= (
        result.relative_makespan_at("ES", most) + 0.05
    )
