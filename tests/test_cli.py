"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro-ptg" in capsys.readouterr().out

    def test_known_commands(self):
        parser = build_parser()
        for command in ("run", "stream", "list", "table1", "fig2", "fig3", "fig4",
                        "fig5", "schedule", "generate"):
            args = parser.parse_args([command] if command != "schedule" else ["schedule"])
            assert args.command == command
        assert parser.parse_args(["validate", "some-dir"]).command == "validate"


class TestListCommand:
    def test_lists_one_registry(self, capsys):
        assert main(["list", "allocators"]) == 0
        out = capsys.readouterr().out
        for name in ("cpa", "hcpa", "scrap", "scrap-max"):
            assert name in out

    def test_lists_every_registry_by_default(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for kind in ("allocators", "mappers", "strategies", "platforms", "families"):
            assert f"{kind}:" in out
        assert "grid5000" in out and "mixed" in out

    def test_json_format(self, capsys):
        assert main(["list", "strategies", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert list(payload) == ["strategies"]
        assert set(payload["strategies"]) == {
            "S", "ES", "PS-cp", "PS-width", "PS-work",
            "WPS-cp", "WPS-width", "WPS-work",
        }
        assert all(payload["strategies"].values())  # every entry is described

    def test_unknown_kind_is_a_parse_error(self):
        with pytest.raises(SystemExit):
            main(["list", "gadgets"])


class TestRunCommand:
    SET_ARGS = [
        "--set", "platform=lille",
        "--set", "workload.family=random",
        "--set", "workload.n_ptgs=2",
        "--set", "workload.max_tasks=8",
        "--set", "workload.seed=3",
        "--set", "strategies=S,ES",
        "--quiet", "--jobs", "1",
    ]

    def test_run_with_set_overrides_only(self, capsys):
        assert main(["run"] + self.SET_ARGS) == 0
        out = capsys.readouterr().out
        assert "random-x2-seed3 on lille" in out
        assert "scrap-max + ready-list" in out
        assert "S" in out and "ES" in out

    def test_run_spec_file(self, capsys, tmp_path):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps({
            "platform": "lille",
            "workload": {"family": "random", "n_ptgs": 2, "seed": 3, "max_tasks": 8},
            "pipeline": {"allocator": "hcpa", "packing": False},
            "strategies": ["ES"],
        }))
        assert main(["run", str(spec_file), "--quiet", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "hcpa + ready-list (no packing)" in out

    def test_run_spec_list_with_override_and_json_output(self, capsys, tmp_path):
        spec_file = tmp_path / "specs.json"
        spec_file.write_text(json.dumps([
            {"workload": {"family": "random", "n_ptgs": 2, "seed": 3, "max_tasks": 8},
             "platform": "lille", "strategies": ["S"]},
            {"workload": {"family": "random", "n_ptgs": 2, "seed": 4, "max_tasks": 8},
             "platform": "lille", "strategies": ["S"]},
        ]))
        code = main([
            "run", str(spec_file),
            "--set", "pipeline.allocator=scrap",
            "--format", "json", "--quiet", "--jobs", "1",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        assert all(doc["spec"]["pipeline"]["allocator"] == "scrap" for doc in payload)
        assert all("S" in doc["outcomes"] for doc in payload)
        assert payload[0]["key"] != payload[1]["key"]

    def test_run_with_store_resumes(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["run"] + self.SET_ARGS + ["--store", store]) == 0
        capsys.readouterr()
        code = main(["run"] + self.SET_ARGS + ["--store", store, "--resume"])
        assert code == 0

    def test_example_spec_file_runs(self, capsys):
        """The checked-in example spec (also exercised by CI) stays valid."""
        from pathlib import Path

        example = Path(__file__).parent.parent / "examples" / "scenario_fft_sweep.json"
        assert main(["run", str(example), "--quiet", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "hcpa + ready-list" in out
        assert "scrap-max + ready-list" in out

    def test_bad_set_syntax_is_a_clean_error(self, capsys):
        assert main(["run", "--set", "pipeline.allocator"]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_missing_spec_file_is_a_clean_error(self, capsys, tmp_path):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "cannot read scenario file" in capsys.readouterr().err

    def test_invalid_json_is_a_clean_error(self, capsys, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        assert main(["run", str(broken)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_bad_registry_name_is_a_clean_error(self, capsys):
        assert main(["run", "--set", "pipeline.allocator=heft", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "unknown allocator" in err and "scrap-max" in err

    def test_resume_requires_store(self, capsys):
        assert main(["run", "--resume"]) == 2
        assert "--resume requires --store" in capsys.readouterr().err


class TestTable1Command:
    def test_prints_table(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "grelon" in out


class TestProfileFlag:
    def test_profile_wraps_any_subcommand(self, capsys):
        assert main(["--profile", "table1"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out  # the command still runs
        assert "cumulative" in captured.err  # ...under cProfile
        assert "function calls" in captured.err

    def test_profile_defaults_off(self, capsys):
        assert main(["table1"]) == 0
        assert "cumulative" not in capsys.readouterr().err


class TestGenerateCommand:
    def test_json_output(self, capsys):
        assert main(["generate", "--family", "random", "--tasks", "6", "--seed", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format_version"] == 1
        assert len(payload["tasks"]) >= 6

    def test_dot_output(self, capsys):
        assert main(["generate", "--family", "strassen", "--format", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_fft_points(self, capsys):
        assert main(["generate", "--family", "fft", "--points", "4"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["tasks"]) == 16  # 15 computational + synthetic exit


class TestScheduleCommand:
    def test_schedule_small_workload(self, capsys):
        code = main(
            [
                "schedule",
                "--family", "random",
                "--n-ptgs", "2",
                "--platform", "lille",
                "--strategy", "ES",
                "--seed", "3",
                "--max-tasks", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "unfairness" in out
        assert "M_own" in out and "M_multi" in out

    def test_schedule_accepts_the_mixed_family(self, capsys):
        code = main(
            [
                "schedule",
                "--family", "mixed",
                "--n-ptgs", "3",
                "--platform", "lille",
                "--strategy", "ES",
                "--seed", "3",
                "--max-tasks", "8",
            ]
        )
        assert code == 0
        assert "mixed-x3-seed3" in capsys.readouterr().out


class TestFigureCommands:
    def test_fig2_reduced(self, capsys):
        code = main(
            [
                "fig2",
                "--workloads", "1",
                "--ptg-counts", "2",
                "--platforms", "lille",
                "--max-tasks", "8",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "recommended mu" in out

    def test_fig5_reduced(self, capsys):
        code = main(
            [
                "fig5",
                "--workloads", "1",
                "--ptg-counts", "2",
                "--platforms", "lille",
                "--seed", "1",
            ]
        )
        assert code == 0
        assert "Figure 5" in capsys.readouterr().out


class TestCampaignCommand:
    CAMPAIGN_ARGS = [
        "campaign",
        "--family", "random",
        "--workloads", "1",
        "--ptg-counts", "2",
        "--platforms", "lille",
        "--max-tasks", "8",
        "--seed", "1",
        "--jobs", "1",
        "--quiet",
    ]

    def test_campaign_runs_and_reports_shards(self, capsys):
        assert main(self.CAMPAIGN_ARGS) == 0
        out = capsys.readouterr().out
        assert "shards: 1 total" in out
        assert "cache hit rate" in out

    def test_campaign_with_store_resumes(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(self.CAMPAIGN_ARGS + ["--store", store]) == 0
        capsys.readouterr()
        assert main(self.CAMPAIGN_ARGS + ["--store", store, "--resume"]) == 0
        assert "1 resumed, 0 executed" in capsys.readouterr().out

    def test_fig3_accepts_parallel_flags(self, capsys, tmp_path):
        code = main(
            [
                "fig3",
                "--workloads", "1",
                "--ptg-counts", "2",
                "--platforms", "lille",
                "--max-tasks", "8",
                "--seed", "1",
                "--jobs", "1",
                "--store", str(tmp_path / "fig3-store"),
            ]
        )
        assert code == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_store_conflict_is_a_clean_error(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(self.CAMPAIGN_ARGS + ["--store", store]) == 0
        capsys.readouterr()
        assert main(self.CAMPAIGN_ARGS + ["--store", store]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "--resume" in err


class TestStreamCommand:
    STREAM_ARGS = [
        "stream", "--rate", "0.05", "--arrivals", "4", "--family", "random",
        "--max-tasks", "8", "--platform", "lille", "--tenants", "2", "--quiet",
    ]

    def test_stream_prints_summary_and_windows(self, capsys):
        assert main(self.STREAM_ARGS) == 0
        out = capsys.readouterr().out
        assert "windowed metrics" in out
        assert "validator" in out and "OK" in out
        assert "stall of tenant-0" in out

    def test_stream_json_output(self, capsys):
        assert main(self.STREAM_ARGS + ["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        outcome = payload[0]["outcomes"]["ES"]
        assert outcome["n_arrivals"] == 4
        assert outcome["valid"] is True
        assert "schedule_rows" not in outcome  # stripped from CLI JSON

    def test_stream_store_resume_and_check(self, capsys, tmp_path):
        store = str(tmp_path / "stream-store")
        assert main(self.STREAM_ARGS + ["--store", store, "--check"]) == 0
        capsys.readouterr()
        args = self.STREAM_ARGS + ["--store", store, "--resume", "--check"]
        assert main(args) == 0
        # without --resume a populated store is a clean error
        assert main(self.STREAM_ARGS + ["--store", store]) == 2

    def test_stream_trace_file(self, capsys, tmp_path):
        trace = tmp_path / "trace.txt"
        trace.write_text("0.0\n30.0\n60.0\n")
        code = main(
            [
                "stream", "--process", "trace", "--trace", str(trace),
                "--family", "random", "--max-tasks", "8",
                "--platform", "lille", "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "applications" in out and "3" in out

    def test_resume_requires_store(self, capsys):
        assert main(["stream", "--resume"]) == 2
        assert "--resume requires --store" in capsys.readouterr().err

    def test_run_routes_streaming_specs(self, capsys, tmp_path):
        spec_file = tmp_path / "stream.json"
        spec_file.write_text(json.dumps({
            "platform": "lille",
            "strategies": ["ES"],
            "arrivals": {
                "process": "poisson", "rate": 0.05, "n_arrivals": 3,
                "family": "random", "max_tasks": 8,
            },
        }))
        assert main(["run", str(spec_file), "--quiet"]) == 0
        assert "windowed metrics" in capsys.readouterr().out


class TestValidateCommand:
    def test_validate_stream_store(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(TestStreamCommand.STREAM_ARGS + ["--store", store]) == 0
        capsys.readouterr()
        assert main(["validate", store]) == 0
        out = capsys.readouterr().out
        assert "stream" in out and "OK" in out
        assert "1 OK, 0 failed" in out

    def test_validate_detects_tampered_schedule(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        assert main(TestStreamCommand.STREAM_ARGS + ["--store", str(store_dir)]) == 0
        capsys.readouterr()
        # corrupt the stored schedule: shift one start before its release
        from repro.campaigns.store import CampaignStore

        store = CampaignStore(store_dir)
        ((key, payload),) = store.iter_payloads("stream")
        rows = payload["outcomes"]["ES"]["schedule_rows"]
        victim = max(rows, key=lambda r: r[4])
        victim[4] = 0.0  # start
        victim[5] = 0.0  # finish
        store.append_payload("stream", key, payload)  # last record wins
        assert main(["validate", str(store_dir)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_empty_store_is_an_error(self, capsys, tmp_path):
        assert main(["validate", str(tmp_path / "empty")]) == 2
        assert "no validatable records" in capsys.readouterr().err


class TestServeAndClientCommands:
    def test_parser_knows_serve_and_client(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "spec.json", "--port", "8080"])
        assert args.command == "serve" and args.port == 8080
        args = parser.parse_args(["client", "status", "--port", "8080"])
        assert args.command == "client" and args.action == "status"

    def test_serve_without_spec_or_restore_is_an_error(self, capsys):
        assert main(["serve"]) == 2
        assert "scenario spec" in capsys.readouterr().err

    def test_serve_restore_requires_store(self, capsys):
        assert main(["serve", "--restore"]) == 2
        assert "--restore requires --store" in capsys.readouterr().err

    def test_client_schedule_requires_tenant(self, capsys):
        assert main(["client", "schedule", "--port", "1"]) == 2
        assert "--tenant" in capsys.readouterr().err

    def test_client_submit_needs_a_streaming_spec(self, capsys, tmp_path):
        spec_file = tmp_path / "batch.json"
        spec_file.write_text('{"platform": "lille"}')
        assert main(["client", "submit", str(spec_file), "--port", "1"]) == 2
        assert "arrivals" in capsys.readouterr().err

    def test_client_unreachable_daemon_is_a_clean_error(self, capsys):
        # nothing listens on port 1; the client must fail with exit 2,
        # not a traceback
        assert main(["client", "status", "--port", "1"]) == 2
        assert "failed" in capsys.readouterr().err


class TestExecutorFlags:
    CAMPAIGN_ARGS = TestCampaignCommand.CAMPAIGN_ARGS

    def test_list_executors(self, capsys):
        assert main(["list", "executors"]) == 0
        out = capsys.readouterr().out
        for name in ("serial", "process-pool", "local-cluster"):
            assert name in out

    def test_campaign_accepts_an_executor(self, capsys):
        assert main(self.CAMPAIGN_ARGS + ["--executor", "serial"]) == 0
        assert "shards: 1 total" in capsys.readouterr().out

    def test_campaign_rejects_an_unknown_executor(self, capsys):
        with pytest.raises(SystemExit):
            main(self.CAMPAIGN_ARGS + ["--executor", "slurm"])

    def test_campaign_compact_flag_compacts_the_store(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        args = self.CAMPAIGN_ARGS + [
            "--executor", "serial", "--store", store, "--compact",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "compacted 1 record(s)" in out
        from repro.campaigns.colstore import ColumnStore
        from repro.campaigns.store import CampaignStore

        assert ColumnStore(CampaignStore(store)).load_state()["segments"]

    def test_compact_without_store_is_a_clean_error(self, capsys):
        assert main(self.CAMPAIGN_ARGS + ["--compact"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "--store" in err


class TestStoreCommand:
    def _populated_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(
            TestCampaignCommand.CAMPAIGN_ARGS + ["--store", store]
        ) == 0
        capsys.readouterr()
        return store

    def test_store_stat(self, capsys, tmp_path):
        store = self._populated_store(tmp_path, capsys)
        assert main(["store", "stat", store]) == 0
        out = capsys.readouterr().out
        assert "segments:" in out
        assert "1 pending record(s)" in out

    def test_store_compact_then_stat(self, capsys, tmp_path):
        store = self._populated_store(tmp_path, capsys)
        assert main(["store", "compact", store]) == 0
        out = capsys.readouterr().out
        assert "compacted 1 record(s) into 1 new segment(s)" in out
        assert main(["store", "stat", store, "--format", "json"]) == 0
        stat = json.loads(capsys.readouterr().out)
        assert stat["segments"] == 1
        assert stat["wal_pending_records"] == 0

    def test_store_compact_round_trips_bit_identically(self, capsys, tmp_path):
        from repro.campaigns.store import CampaignStore

        store = self._populated_store(tmp_path, capsys)
        before = CampaignStore(store).results_by_key()
        assert main(["store", "compact", store]) == 0
        capsys.readouterr()
        assert CampaignStore(store).results_by_key() == before

    def test_store_summarize(self, capsys, tmp_path):
        store = self._populated_store(tmp_path, capsys)
        assert main(["store", "summarize", store]) == 0
        out = capsys.readouterr().out
        assert "1 experiment(s)" in out
        assert "average_unfairness:" in out

    def test_store_summarize_matches_after_compaction(self, capsys, tmp_path):
        store = self._populated_store(tmp_path, capsys)
        assert main(["store", "summarize", store, "--format", "json"]) == 0
        before = json.loads(capsys.readouterr().out)
        assert main(["store", "compact", store]) == 0
        capsys.readouterr()
        assert main(["store", "summarize", store, "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == before

    def test_store_command_on_a_missing_store_is_a_clean_error(
        self, capsys, tmp_path
    ):
        assert main(["store", "stat", str(tmp_path / "nope")]) == 2
        assert capsys.readouterr().err.startswith("error:")
