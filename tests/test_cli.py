"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro-ptg" in capsys.readouterr().out

    def test_known_commands(self):
        parser = build_parser()
        for command in ("table1", "fig2", "fig3", "fig4", "fig5", "schedule", "generate"):
            args = parser.parse_args([command] if command != "schedule" else ["schedule"])
            assert args.command == command


class TestTable1Command:
    def test_prints_table(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "grelon" in out


class TestProfileFlag:
    def test_profile_wraps_any_subcommand(self, capsys):
        assert main(["--profile", "table1"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out  # the command still runs
        assert "cumulative" in captured.err  # ...under cProfile
        assert "function calls" in captured.err

    def test_profile_defaults_off(self, capsys):
        assert main(["table1"]) == 0
        assert "cumulative" not in capsys.readouterr().err


class TestGenerateCommand:
    def test_json_output(self, capsys):
        assert main(["generate", "--family", "random", "--tasks", "6", "--seed", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format_version"] == 1
        assert len(payload["tasks"]) >= 6

    def test_dot_output(self, capsys):
        assert main(["generate", "--family", "strassen", "--format", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_fft_points(self, capsys):
        assert main(["generate", "--family", "fft", "--points", "4"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["tasks"]) == 16  # 15 computational + synthetic exit


class TestScheduleCommand:
    def test_schedule_small_workload(self, capsys):
        code = main(
            [
                "schedule",
                "--family", "random",
                "--n-ptgs", "2",
                "--platform", "lille",
                "--strategy", "ES",
                "--seed", "3",
                "--max-tasks", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "unfairness" in out
        assert "M_own" in out and "M_multi" in out


class TestFigureCommands:
    def test_fig2_reduced(self, capsys):
        code = main(
            [
                "fig2",
                "--workloads", "1",
                "--ptg-counts", "2",
                "--platforms", "lille",
                "--max-tasks", "8",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "recommended mu" in out

    def test_fig5_reduced(self, capsys):
        code = main(
            [
                "fig5",
                "--workloads", "1",
                "--ptg-counts", "2",
                "--platforms", "lille",
                "--seed", "1",
            ]
        )
        assert code == 0
        assert "Figure 5" in capsys.readouterr().out


class TestCampaignCommand:
    CAMPAIGN_ARGS = [
        "campaign",
        "--family", "random",
        "--workloads", "1",
        "--ptg-counts", "2",
        "--platforms", "lille",
        "--max-tasks", "8",
        "--seed", "1",
        "--jobs", "1",
        "--quiet",
    ]

    def test_campaign_runs_and_reports_shards(self, capsys):
        assert main(self.CAMPAIGN_ARGS) == 0
        out = capsys.readouterr().out
        assert "shards: 1 total" in out
        assert "cache hit rate" in out

    def test_campaign_with_store_resumes(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(self.CAMPAIGN_ARGS + ["--store", store]) == 0
        capsys.readouterr()
        assert main(self.CAMPAIGN_ARGS + ["--store", store, "--resume"]) == 0
        assert "1 resumed, 0 executed" in capsys.readouterr().out

    def test_fig3_accepts_parallel_flags(self, capsys, tmp_path):
        code = main(
            [
                "fig3",
                "--workloads", "1",
                "--ptg-counts", "2",
                "--platforms", "lille",
                "--max-tasks", "8",
                "--seed", "1",
                "--jobs", "1",
                "--store", str(tmp_path / "fig3-store"),
            ]
        )
        assert code == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_store_conflict_is_a_clean_error(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(self.CAMPAIGN_ARGS + ["--store", store]) == 0
        capsys.readouterr()
        assert main(self.CAMPAIGN_ARGS + ["--store", store]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "--resume" in err
