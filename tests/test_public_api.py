"""Tests of the public package surface (imports, __all__, version)."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} listed in __all__ but missing"

    def test_key_entry_points_exposed(self):
        assert repro.ConcurrentScheduler is not None
        assert repro.ScheduleExecutor is not None
        assert repro.generate_random_ptg is not None
        assert callable(repro.strategy)
        assert repro.STRATEGY_NAMES[0] == "S"

    def test_exception_hierarchy(self):
        for name in (
            "InvalidGraphError",
            "InvalidPlatformError",
            "AllocationError",
            "MappingError",
            "SimulationError",
            "ConfigurationError",
        ):
            exc = getattr(repro, name)
            assert issubclass(exc, repro.ReproError)


class TestSubpackagesImportable:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.platform",
            "repro.platform.grid5000",
            "repro.dag",
            "repro.allocation",
            "repro.constraints",
            "repro.mapping",
            "repro.scheduler",
            "repro.scheduler.online",
            "repro.baselines",
            "repro.simulate",
            "repro.simulate.trace",
            "repro.metrics",
            "repro.experiments",
            "repro.cli",
            "repro.utils",
        ],
    )
    def test_importable(self, module):
        assert importlib.import_module(module) is not None

    def test_subpackage_all_lists_resolve(self):
        for module_name in (
            "repro.platform",
            "repro.dag",
            "repro.allocation",
            "repro.constraints",
            "repro.mapping",
            "repro.scheduler",
            "repro.baselines",
            "repro.simulate",
            "repro.metrics",
            "repro.experiments",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name} missing"


class TestDocstrings:
    @pytest.mark.parametrize(
        "module",
        [
            "repro",
            "repro.platform.multicluster",
            "repro.dag.graph",
            "repro.allocation.scrap",
            "repro.constraints.strategies",
            "repro.mapping.ready_list",
            "repro.scheduler.concurrent",
            "repro.simulate.executor",
            "repro.metrics.fairness",
            "repro.experiments.runner",
        ],
    )
    def test_modules_documented(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 40

    def test_public_classes_documented(self):
        from repro.allocation.scrap import ScrapMaxAllocator
        from repro.constraints.strategies import WeightedProportionalShareStrategy
        from repro.mapping.ready_list import ReadyListMapper
        from repro.scheduler.concurrent import ConcurrentScheduler
        from repro.simulate.executor import ScheduleExecutor

        for cls in (
            ScrapMaxAllocator,
            WeightedProportionalShareStrategy,
            ReadyListMapper,
            ConcurrentScheduler,
            ScheduleExecutor,
        ):
            assert cls.__doc__
            assert cls.allocate.__doc__ if hasattr(cls, "allocate") else True
