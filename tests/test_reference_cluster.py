"""Tests for the homogeneous reference cluster abstraction."""

import math

import pytest

from repro.allocation.reference import ReferenceCluster
from repro.dag.task import Task
from repro.exceptions import AllocationError
from repro.platform import grid5000
from repro.platform.builder import heterogeneous_platform, single_cluster_platform


class TestConstruction:
    def test_of_platform(self, small_platform):
        ref = ReferenceCluster.of(small_platform)
        # slowest speed is 2.0, total power = 8*2 + 12*4 = 64
        assert ref.speed_gflops == 2.0
        assert ref.size == 32
        assert ref.total_power_gflops == pytest.approx(64.0)

    def test_single_cluster_platform_is_identity(self):
        platform = single_cluster_platform(num_processors=16, speed_gflops=4.0)
        ref = ReferenceCluster.of(platform)
        assert ref.speed_gflops == 4.0
        assert ref.size == 16

    def test_grid5000_reference_sizes(self):
        for platform in grid5000.all_sites():
            ref = ReferenceCluster.of(platform)
            assert ref.size >= platform.total_processors
            assert ref.speed_gflops == platform.min_speed_gflops

    def test_invalid_parameters(self):
        with pytest.raises(AllocationError):
            ReferenceCluster(speed_gflops=0, size=10)
        with pytest.raises(AllocationError):
            ReferenceCluster(speed_gflops=1.0, size=0)


class TestTiming:
    def test_execution_time(self, small_platform):
        ref = ReferenceCluster.of(small_platform)
        task = Task(0, flops=4e9, alpha=0.0)
        assert ref.execution_time(task, 1) == pytest.approx(2.0)
        assert ref.execution_time(task, 2) == pytest.approx(1.0)

    def test_area_and_power(self, small_platform):
        ref = ReferenceCluster.of(small_platform)
        task = Task(0, flops=4e9, alpha=0.0)
        assert ref.area(task, 4) == pytest.approx(2.0)
        assert ref.power_used(4) == pytest.approx(8.0)

    def test_marginal_gain_positive(self, small_platform):
        ref = ReferenceCluster.of(small_platform)
        task = Task(0, flops=4e9, alpha=0.1)
        assert ref.marginal_gain(task, 1) > 0


class TestTranslation:
    def test_translate_equivalent_power(self):
        platform = heterogeneous_platform((10, 10), (2.0, 4.0))
        ref = ReferenceCluster.of(platform)  # s_ref = 2.0
        fast = platform.cluster(platform.cluster_names()[1])
        # 4 reference processors at 2 GFlop/s == 8 GFlop/s -> 2 fast processors
        assert ref.translate(4, fast) == 2

    def test_translate_clipped_to_cluster_size(self):
        platform = heterogeneous_platform((4, 50), (2.0, 2.0))
        ref = ReferenceCluster.of(platform)
        small = platform.cluster(platform.cluster_names()[0])
        assert ref.translate(40, small) == 4

    def test_translate_at_least_one(self):
        platform = heterogeneous_platform((10, 10), (1.0, 8.0))
        ref = ReferenceCluster.of(platform)
        fast = platform.cluster(platform.cluster_names()[1])
        assert ref.translate(1, fast) == 1

    def test_translate_invalid(self, small_platform):
        ref = ReferenceCluster.of(small_platform)
        with pytest.raises(AllocationError):
            ref.translate(0, small_platform.clusters[0])

    def test_max_allocation_bounded_by_best_cluster(self, small_platform):
        ref = ReferenceCluster.of(small_platform)
        # best cluster power = 12 * 4 = 48 GFlop/s -> 24 reference processors
        assert ref.max_allocation(small_platform) == 24

    def test_max_allocation_not_above_reference_size(self):
        platform = single_cluster_platform(num_processors=8, speed_gflops=2.0)
        ref = ReferenceCluster.of(platform)
        assert ref.max_allocation(platform) <= ref.size
