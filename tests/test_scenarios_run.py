"""Equivalence and orchestration tests for scenario execution.

The redesign promise is that the declarative path is a *front door*,
not a fork: a default-pipeline scenario must reproduce the
pre-redesign ``experiments.runner`` path bit for bit, and spec-keyed
stores must resume exactly like campaign stores do.
"""

import pytest

from repro.campaigns.shards import ExperimentShard, make_shards_from_specs
from repro.campaigns.store import CampaignStore
from repro.constraints.registry import paper_strategies
from repro.exceptions import CampaignError, ConfigurationError
from repro.experiments.runner import run_experiment
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.platform import grid5000
from repro.scenarios.builder import Scenario
from repro.scenarios.run import run_scenario, run_scenarios, scenario_workload
from repro.scenarios.spec import PipelineSpec, ScenarioSpec, WorkloadSpec2


def tiny_spec(**pipeline_kwargs):
    return ScenarioSpec(
        platform="lille",
        workload=WorkloadSpec2(family="random", n_ptgs=2, seed=5, max_tasks=8),
        pipeline=PipelineSpec(**pipeline_kwargs),
        strategies=("S", "ES"),
    )


class TestRunScenarioEquivalence:
    @pytest.fixture(scope="class")
    def default_fft_spec(self):
        """A default-pipeline scenario over all 8 strategies."""
        return ScenarioSpec(
            platform="lille",
            workload=WorkloadSpec2(family="fft", n_ptgs=2, seed=2),
        )

    def test_bit_identical_to_the_runner_path_for_all_8_strategies(
        self, default_fft_spec
    ):
        scenario_result = run_scenario(default_fft_spec)

        workload_spec = WorkloadSpec(family="fft", n_ptgs=2, seed=2)
        legacy = run_experiment(
            make_workload(workload_spec),
            grid5000.lille(),
            paper_strategies("fft"),
            workload_label=workload_spec.label(),
        )

        new = scenario_result.experiment
        assert list(new.outcomes) == list(legacy.outcomes)
        assert len(new.outcomes) == 8
        assert new.own_makespans == legacy.own_makespans
        assert new.platform == legacy.platform
        assert new.workload == legacy.workload
        for name in legacy.outcomes:
            ours, theirs = new.outcomes[name], legacy.outcomes[name]
            assert ours.betas == theirs.betas
            assert ours.makespans == theirs.makespans
            assert ours.slowdowns == theirs.slowdowns
            assert ours.unfairness == theirs.unfairness
            assert ours.batch_makespan == theirs.batch_makespan
            assert ours.mean_application_makespan == theirs.mean_application_makespan

    def test_workload_generation_is_shared_with_the_harness(self, default_fft_spec):
        ptgs = scenario_workload(default_fft_spec)
        legacy = make_workload(WorkloadSpec(family="fft", n_ptgs=2, seed=2))
        assert [p.name for p in ptgs] == [p.name for p in legacy]
        assert [t.flops for p in ptgs for t in p.tasks()] == [
            t.flops for p in legacy for t in p.tasks()
        ]

    def test_pipeline_selection_changes_the_outcome(self):
        default = run_scenario(tiny_spec())
        hcpa = run_scenario(tiny_spec(allocator="hcpa"))
        unpacked = run_scenario(tiny_spec(packing=False))
        # different allocators genuinely flow through to the metrics
        assert (
            hcpa.experiment.outcomes["ES"].makespans
            != default.experiment.outcomes["ES"].makespans
            or unpacked.experiment.outcomes["ES"].makespans
            != default.experiment.outcomes["ES"].makespans
        )

    def test_platform_object_override(self, small_platform):
        spec = tiny_spec()
        result = run_scenario(spec, platform=small_platform)
        assert result.experiment.platform == small_platform.name


class TestFamilyPlugins:
    def test_registered_family_runs_end_to_end(self, small_platform):
        """The documented plugin API: register a family, select it, run it."""
        from repro.dag.generator import RandomPTGConfig, generate_random_ptg
        from repro.scenarios.registry import FAMILIES

        def tiny_family(n_ptgs=4, seed=0, max_tasks=None):
            return [
                generate_random_ptg(
                    seed + i, RandomPTGConfig(n_tasks=4), name=f"tiny{seed}-{i}"
                )
                for i in range(n_ptgs)
            ]

        FAMILIES.register("tiny", tiny_family, description="4-task test graphs")
        try:
            spec = ScenarioSpec(
                platform="lille",
                workload=WorkloadSpec2(family="tiny", n_ptgs=2, seed=1),
                strategies=("ES",),
            )
            result = run_scenario(spec, platform=small_platform)
            assert result.experiment.n_ptgs == 2
            assert result.unfairness_of("ES") >= 0.0
            # the harness spec accepts the plugin family too
            assert WorkloadSpec(family="tiny", n_ptgs=2).family == "tiny"
            assert len(make_workload(WorkloadSpec(family="tiny", n_ptgs=3, seed=2))) == 3
        finally:
            FAMILIES._entries.pop("tiny", None)

    def test_unregistered_family_error_names_the_registry_entries(self):
        with pytest.raises(ConfigurationError) as err:
            WorkloadSpec(family="montecarlo")
        assert "mixed" in str(err.value)


class TestShardKeys:
    def test_shard_key_equals_spec_hash(self):
        spec = tiny_spec(allocator="scrap", packing=False)
        shard = ExperimentShard.from_scenario(spec)
        assert shard.key() == spec.content_hash()

    def test_make_shards_from_specs_preserves_order(self):
        specs = Scenario.on("lille").workload(
            family="random", n_ptgs=2, seed=5, max_tasks=8
        ).sweep(allocator=["hcpa", "scrap"])
        shards = make_shards_from_specs(specs)
        assert [s.index for s in shards] == [0, 1]
        assert [s.key() for s in shards] == [s.content_hash() for s in specs]

    def test_labels_of_pipeline_only_sweeps_stay_distinct(self):
        """Shards differing only in the pipeline are distinguishable in logs."""
        specs = Scenario.on("lille").workload(
            family="random", n_ptgs=2, seed=5, max_tasks=8
        ).sweep(allocator=["hcpa", "scrap"], packing=[True, False])
        labels = [s.label() for s in make_shards_from_specs(specs)]
        assert len(set(labels)) == len(labels)
        assert any("nopack" in label for label in labels)


class TestCannedSpecLists:
    def test_campaign_config_scenario_specs_share_shard_keys(self):
        from repro.campaigns.shards import make_shards
        from repro.experiments.runner import CampaignConfig

        config = CampaignConfig(
            family="fft", ptg_counts=(2, 3), workloads_per_point=2,
            platforms=(grid5000.lille(), grid5000.nancy()),
            strategy_names=("S", "ES"), base_seed=7,
        )
        specs = config.scenario_specs()
        shards = make_shards(config)
        assert len(specs) == len(shards) == 2 * 2 * 2
        assert [s.content_hash() for s in specs] == [s.key() for s in shards]

    def test_unregistered_platform_is_an_actionable_error(self, small_platform):
        from repro.experiments.runner import CampaignConfig

        config = CampaignConfig(platforms=(small_platform,))
        with pytest.raises(ConfigurationError, match="not registered"):
            config.scenario_specs()

    def test_figure_scenarios_enumerate_the_figure_grid(self):
        from repro.experiments.figures import figure_scenarios

        specs = figure_scenarios(
            5, ptg_counts=(2,), workloads_per_point=2,
            platforms=[grid5000.lille()],
        )
        assert len(specs) == 2
        assert all(s.workload.family == "strassen" for s in specs)
        # width strategies dropped for Strassen, as in the paper's legend
        assert all(
            "width" not in n for s in specs for n in s.resolved_strategy_names()
        )

    def test_mu_sweep_scenarios_put_mu_in_the_pipeline(self):
        from repro.experiments.mu_sweep import mu_sweep_scenarios

        specs = mu_sweep_scenarios(
            characteristic="width", mu_values=(0.0, 0.5), ptg_counts=(2,),
            workloads_per_point=1, platform_names=("lille",),
        )
        assert [s.pipeline.mu for s in specs] == [0.0, 0.5]
        assert all(s.strategies == ("WPS-width",) for s in specs)
        assert len({s.content_hash() for s in specs}) == 2


class TestRunScenarios:
    def sweep_specs(self):
        return Scenario.on("lille").workload(
            family="random", n_ptgs=2, seed=5, max_tasks=8
        ).pipeline(strategy=["S", "ES"]).sweep(allocator=["hcpa", "scrap-max"])

    def test_results_in_input_order(self):
        specs = self.sweep_specs()
        results = run_scenarios(specs, jobs=1)
        assert [r.spec for r in results] == specs
        assert all(sorted(r.experiment.outcomes) == ["ES", "S"] for r in results)

    def test_matches_run_scenario(self):
        specs = self.sweep_specs()
        batch = run_scenarios(specs, jobs=1)
        solo = run_scenario(specs[0])
        assert batch[0].experiment.outcomes["ES"].makespans == \
            solo.experiment.outcomes["ES"].makespans

    def test_duplicate_specs_share_one_execution(self):
        spec = tiny_spec()
        results = run_scenarios([spec, spec], jobs=1)
        assert results[0].experiment is results[1].experiment

    def test_empty_spec_list_raises(self):
        with pytest.raises(ConfigurationError):
            run_scenarios([], jobs=1)

    def test_store_resume_skips_completed_specs(self, tmp_path):
        specs = self.sweep_specs()
        store = CampaignStore(tmp_path / "store")
        first = run_scenarios(specs, jobs=1, store=store)
        assert len(store) == 2

        messages = []
        second = run_scenarios(specs, jobs=1, store=store, progress=messages.append)
        assert any("resuming: 2/2" in m for m in messages)
        for a, b in zip(first, second):
            assert a.experiment.outcomes["ES"].makespans == \
                b.experiment.outcomes["ES"].makespans
            assert a.experiment.own_makespans == b.experiment.own_makespans

    def test_resume_extends_to_supersets_of_the_sweep(self, tmp_path):
        """A spec-keyed store resumes even when the sweep grew."""
        specs = self.sweep_specs()
        store = CampaignStore(tmp_path / "store")
        run_scenarios(specs[:1], jobs=1, store=store)

        messages = []
        results = run_scenarios(specs, jobs=1, store=store, progress=messages.append)
        assert any("resuming: 1/2" in m for m in messages)
        assert len(results) == 2
        assert len(store) == 2

    def test_populated_store_without_resume_raises(self, tmp_path):
        specs = self.sweep_specs()
        store = CampaignStore(tmp_path / "store")
        run_scenarios(specs, jobs=1, store=store)
        with pytest.raises(CampaignError, match="resume"):
            run_scenarios(specs, jobs=1, store=store, resume=False)

    def test_store_accepts_a_path_string(self, tmp_path):
        run_scenarios([tiny_spec()], jobs=1, store=str(tmp_path / "s"))
        assert (tmp_path / "s" / "results.jsonl").exists()

    def test_parallel_matches_inline(self):
        specs = self.sweep_specs()
        inline = run_scenarios(specs, jobs=1)
        parallel = run_scenarios(specs, jobs=2)
        for a, b in zip(inline, parallel):
            for name in a.experiment.outcomes:
                assert a.experiment.outcomes[name].makespans == \
                    b.experiment.outcomes[name].makespans
