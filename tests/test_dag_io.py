"""Tests for PTG serialisation (JSON / DOT)."""

import pytest

from repro.dag.generator import RandomPTGConfig, generate_random_ptg
from repro.dag.io import (
    load_workload,
    ptg_from_dict,
    ptg_from_json,
    ptg_to_dict,
    ptg_to_dot,
    ptg_to_json,
    save_workload,
)
from repro.exceptions import InvalidGraphError


class TestJsonRoundTrip:
    def test_round_trip_preserves_structure(self, small_random_ptg):
        restored = ptg_from_json(ptg_to_json(small_random_ptg))
        assert restored.name == small_random_ptg.name
        assert restored.n_tasks == small_random_ptg.n_tasks
        assert sorted(restored.edges()) == sorted(small_random_ptg.edges())

    def test_round_trip_preserves_costs(self, small_random_ptg):
        restored = ptg_from_json(ptg_to_json(small_random_ptg))
        for task in small_random_ptg.tasks():
            other = restored.task(task.task_id)
            assert other.flops == pytest.approx(task.flops)
            assert other.alpha == pytest.approx(task.alpha)
            assert other.complexity == task.complexity

    def test_round_trip_via_dict(self, diamond_ptg):
        restored = ptg_from_dict(ptg_to_dict(diamond_ptg))
        restored.validate()
        assert restored.n_edges == diamond_ptg.n_edges

    def test_invalid_json(self):
        with pytest.raises(InvalidGraphError):
            ptg_from_json("this is not json")

    def test_wrong_format_version(self, diamond_ptg):
        payload = ptg_to_dict(diamond_ptg)
        payload["format_version"] = 99
        with pytest.raises(InvalidGraphError):
            ptg_from_dict(payload)

    def test_missing_fields(self):
        with pytest.raises(InvalidGraphError):
            ptg_from_dict({"format_version": 1, "name": "x"})

    def test_non_dict_payload(self):
        with pytest.raises(InvalidGraphError):
            ptg_from_dict([1, 2, 3])


class TestDot:
    def test_dot_contains_nodes_and_edges(self, diamond_ptg):
        dot = ptg_to_dot(diamond_ptg)
        assert dot.startswith("digraph")
        assert dot.count("->") == diamond_ptg.n_edges
        assert "t0" in dot and "t3" in dot


class TestWorkloadFiles:
    def test_save_and_load(self, tmp_path, rng):
        workload = [
            generate_random_ptg(rng, RandomPTGConfig(n_tasks=6), name=f"w{i}")
            for i in range(3)
        ]
        path = tmp_path / "workload.json"
        save_workload(workload, str(path))
        restored = load_workload(str(path))
        assert [p.name for p in restored] == [p.name for p in workload]
        assert [p.n_tasks for p in restored] == [p.n_tasks for p in workload]

    def test_load_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(InvalidGraphError):
            load_workload(str(path))
