"""Span tracer: nesting, ordering, determinism, the disabled path."""

import pytest

from repro import obs
from repro.obs import trace
from repro.obs.trace import NOOP_SPAN, Tracer


def fake_clock(start=0.0, step=1.0):
    """A deterministic monotonic clock: start, start+step, ..."""
    state = {"now": start - step}

    def tick():
        state["now"] += step
        return state["now"]

    return tick


def test_nested_spans_record_depth_parent_and_completion_order():
    tracer = Tracer(clock=fake_clock())
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner2"):
            pass
    names = [(s.name, s.depth) for s in tracer.spans]
    assert names == [("inner", 1), ("inner2", 1), ("outer", 0)]
    outer = tracer.spans[2]
    assert outer.parent == -1
    assert tracer.spans[0].parent == outer.index
    assert tracer.spans[1].parent == outer.index


def test_span_timing_is_deterministic_under_fake_clock():
    tracer = Tracer(clock=fake_clock())
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    inner, outer = tracer.spans
    assert (inner.start, inner.end) == (1.0, 2.0)
    assert (outer.start, outer.end) == (0.0, 3.0)
    assert inner.duration == 1.0
    assert outer.duration == 3.0
    # the same program records the same spans again
    tracer2 = Tracer(clock=fake_clock())
    with tracer2.span("outer"):
        with tracer2.span("inner"):
            pass
    assert [(s.name, s.start, s.end) for s in tracer2.spans] == [
        (s.name, s.start, s.end) for s in tracer.spans
    ]


def test_labels_and_annotate_are_stringified():
    tracer = Tracer(clock=fake_clock())
    with tracer.span("s", tenant="t0", n=3) as span:
        span.annotate(events=17)
    record = tracer.spans[0]
    assert record.labels == {"tenant": "t0", "n": "3", "events": "17"}


def test_out_of_order_close_raises():
    tracer = Tracer(clock=fake_clock())
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    outer.__enter__()
    inner.__enter__()
    with pytest.raises(RuntimeError, match="closed out of order"):
        outer.__exit__(None, None, None)


def test_disabled_module_span_is_the_shared_noop_singleton():
    assert not trace.enabled()
    first = trace.span("anything", tenant="t")
    second = trace.span("other")
    assert first is NOOP_SPAN
    assert second is NOOP_SPAN
    with first as span:
        span.annotate(ignored=1)  # must be a silent no-op


def test_capture_installs_and_restores_module_tracer():
    assert trace.active() is None
    with obs.capture(clock=fake_clock()) as session:
        assert trace.active() is session.tracer
        with trace.span("outer"):
            with trace.span("inner"):
                pass
    assert trace.active() is None
    assert [s.name for s in session.spans] == ["inner", "outer"]


def test_capture_nests_and_restores_previous_session():
    with obs.capture(clock=fake_clock()) as outer_session:
        with trace.span("before"):
            pass
        with obs.capture(clock=fake_clock()) as inner_session:
            assert obs.current() is inner_session
            with trace.span("nested"):
                pass
        assert obs.current() is outer_session
        with trace.span("after"):
            pass
    assert [s.name for s in outer_session.spans] == ["before", "after"]
    assert [s.name for s in inner_session.spans] == ["nested"]
    assert obs.current() is None


def test_capture_restores_on_exception():
    with pytest.raises(ValueError):
        with obs.capture():
            raise ValueError("boom")
    assert not obs.enabled()
    assert trace.active() is None


def test_profiler_factory_profiles_root_spans():
    from repro.obs.profile import start_profiler

    tracer = Tracer(clock=fake_clock(), profiler_factory=start_profiler)
    with tracer.span("root"):
        with tracer.span("child"):
            sum(range(100))
    assert "root" in tracer.profiles
    assert "cumulative" in tracer.profiles["root"]
    assert "child" not in tracer.profiles


def test_open_spans_lists_outermost_first():
    tracer = Tracer(clock=fake_clock())
    with tracer.span("a"):
        with tracer.span("b"):
            assert tracer.open_spans == ["a", "b"]
    assert tracer.open_spans == []
