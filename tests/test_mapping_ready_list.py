"""Tests for the ready-list concurrent mapper (the paper's proposal)."""

import pytest

from repro.allocation.base import Allocation
from repro.allocation.reference import ReferenceCluster
from repro.allocation.scrap import ScrapMaxAllocator
from repro.exceptions import MappingError
from repro.mapping.base import AllocatedPTG
from repro.mapping.ready_list import ReadyListMapper
from repro.mapping.global_order import GlobalOrderMapper

from tests.conftest import make_chain_ptg, make_fork_join_ptg


def allocate(ptg, platform, beta=1.0):
    return AllocatedPTG(ptg, ScrapMaxAllocator().allocate(ptg, platform, beta=beta))


class TestSingleApplication:
    def test_all_tasks_placed(self, small_platform, small_random_ptg):
        schedule = ReadyListMapper().map([allocate(small_random_ptg, small_platform)], small_platform)
        assert len(schedule) == small_random_ptg.n_tasks

    def test_schedule_is_consistent(self, small_platform, small_random_ptg):
        schedule = ReadyListMapper().map([allocate(small_random_ptg, small_platform)], small_platform)
        schedule.validate_no_overlap()
        schedule.validate_precedences([small_random_ptg])

    def test_chain_executes_sequentially(self, small_platform):
        ptg = make_chain_ptg(n=4)
        schedule = ReadyListMapper().map([allocate(ptg, small_platform)], small_platform)
        entries = schedule.entries_of("chain")
        for a, b in zip(entries, entries[1:]):
            assert b.start >= a.finish - 1e-9

    def test_fork_join_exploits_parallelism(self, small_platform):
        ptg = make_fork_join_ptg(width=5, flops=8e9)
        schedule = ReadyListMapper().map(
            [allocate(ptg, small_platform, beta=1.0)], small_platform
        )
        branches = [schedule.entry("forkjoin", i) for i in range(1, 6)]
        # at least two branches overlap in time
        overlaps = 0
        for i, a in enumerate(branches):
            for b in branches[i + 1:]:
                if a.start < b.finish and b.start < a.finish:
                    overlaps += 1
        assert overlaps > 0


class TestConcurrentApplications:
    def test_all_applications_fully_mapped(self, medium_platform, random_workload):
        allocated = [allocate(p, medium_platform, beta=1 / 3) for p in random_workload]
        schedule = ReadyListMapper().map(allocated, medium_platform)
        for ptg in random_workload:
            assert len(schedule.entries_of(ptg.name)) == ptg.n_tasks
        schedule.validate_no_overlap()
        schedule.validate_precedences(random_workload)

    def test_small_application_not_postponed(self, medium_platform):
        """The Figure 1 scenario: the small PTG starts before the big one ends."""
        big = make_chain_ptg("big", n=6, flops=200e9)
        small = make_chain_ptg("small", n=2, flops=5e9)
        allocated = [
            allocate(big, medium_platform, beta=0.5),
            allocate(small, medium_platform, beta=0.5),
        ]
        schedule = ReadyListMapper().map(allocated, medium_platform)
        assert schedule.makespan("small") < schedule.makespan("big")
        small_start = min(e.start for e in schedule.entries_of("small"))
        assert small_start < schedule.entry("big", 1).finish

    def test_ready_list_fairer_to_small_app_than_global_order(self, medium_platform):
        """Compared to a global ordering, the small application finishes no later."""
        big = make_chain_ptg("big", n=6, flops=200e9)
        small = make_chain_ptg("small", n=2, flops=5e9)

        def build(mapper):
            allocated = [
                allocate(big, medium_platform, beta=0.5),
                allocate(small, medium_platform, beta=0.5),
            ]
            return mapper.map(allocated, medium_platform)

        ready = build(ReadyListMapper())
        global_order = build(GlobalOrderMapper())
        assert ready.makespan("small") <= global_order.makespan("small") + 1e-9

    def test_duplicate_names_rejected(self, medium_platform):
        a = make_chain_ptg("same", n=2)
        b = make_chain_ptg("same", n=3)
        with pytest.raises(MappingError):
            ReadyListMapper().map(
                [allocate(a, medium_platform), allocate(b, medium_platform)],
                medium_platform,
            )

    def test_empty_input_rejected(self, medium_platform):
        with pytest.raises(MappingError):
            ReadyListMapper().map([], medium_platform)

    def test_mismatched_allocation_rejected(self, medium_platform):
        a = make_chain_ptg("a", n=2)
        b = make_chain_ptg("b", n=2)
        alloc_b = ScrapMaxAllocator().allocate(b, medium_platform)
        with pytest.raises(MappingError):
            AllocatedPTG(a, alloc_b)

    def test_packing_can_be_disabled(self, medium_platform, random_workload):
        allocated = [allocate(p, medium_platform, beta=0.5) for p in random_workload]
        schedule = ReadyListMapper(enable_packing=False).map(allocated, medium_platform)
        schedule.validate_no_overlap()
