"""Tests for the random layered PTG generator."""

import numpy as np
import pytest

from repro.dag.cost_models import (
    ComplexityClass,
    MAX_DATA_ELEMENTS,
    MIN_DATA_ELEMENTS,
)
from repro.dag.generator import (
    PAPER_DENSITIES,
    PAPER_JUMPS,
    PAPER_REGULARITIES,
    PAPER_TASK_COUNTS,
    PAPER_WIDTHS,
    RandomPTGConfig,
    generate_random_ptg,
    generate_random_workload,
)
from repro.exceptions import ConfigurationError


class TestConfig:
    def test_defaults_valid(self):
        RandomPTGConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_tasks=0),
            dict(width=0.0),
            dict(width=1.5),
            dict(regularity=-0.1),
            dict(density=2.0),
            dict(jump=0),
            dict(alpha_max=2.0),
            dict(min_data_elements=0),
            dict(min_data_elements=100, max_data_elements=10),
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            RandomPTGConfig(**kwargs)

    def test_label(self):
        cfg = RandomPTGConfig(n_tasks=10, width=0.2, regularity=0.8, density=0.5, jump=2)
        assert "n10" in cfg.label() and "w0.2" in cfg.label()
        assert RandomPTGConfig(name="custom").label() == "custom"

    def test_paper_grid_size(self):
        grid = RandomPTGConfig.paper_grid()
        expected = (
            len(PAPER_TASK_COUNTS)
            * len(PAPER_WIDTHS)
            * len(PAPER_REGULARITIES)
            * len(PAPER_DENSITIES)
            * len(PAPER_JUMPS)
        )
        assert len(grid) == expected


class TestGeneration:
    def test_task_count(self, rng):
        g = generate_random_ptg(rng, RandomPTGConfig(n_tasks=25))
        assert len(g.real_tasks()) == 25

    def test_single_entry_exit_and_valid(self, rng):
        g = generate_random_ptg(rng, RandomPTGConfig(n_tasks=15))
        g.validate()
        assert g.entry_tasks() and g.exit_tasks()

    def test_deterministic_for_seed(self):
        a = generate_random_ptg(3, RandomPTGConfig(n_tasks=12))
        b = generate_random_ptg(3, RandomPTGConfig(n_tasks=12))
        assert a.edges() == b.edges()
        assert [t.flops for t in a.tasks()] == [t.flops for t in b.tasks()]

    def test_costs_within_paper_bounds(self, rng):
        g = generate_random_ptg(rng, RandomPTGConfig(n_tasks=30))
        for task in g.real_tasks():
            assert MIN_DATA_ELEMENTS <= task.data_elements <= MAX_DATA_ELEMENTS
            assert 0.0 <= task.alpha <= 0.25
            assert task.flops > 0

    def test_fixed_complexity_scenario(self, rng):
        g = generate_random_ptg(
            rng, RandomPTGConfig(n_tasks=20, complexity=ComplexityClass.MATMUL)
        )
        assert all(t.complexity is ComplexityClass.MATMUL for t in g.real_tasks())

    def test_width_parameter_controls_parallelism(self):
        narrow = generate_random_ptg(7, RandomPTGConfig(n_tasks=30, width=0.1, regularity=0.8))
        wide = generate_random_ptg(7, RandomPTGConfig(n_tasks=30, width=0.9, regularity=0.8))
        assert wide.max_width() > narrow.max_width()
        assert narrow.depth > wide.depth

    def test_jump_edges_do_not_break_validity(self, rng):
        g = generate_random_ptg(rng, RandomPTGConfig(n_tasks=40, jump=4, density=0.8))
        g.validate()

    def test_edge_data_matches_source_output(self, rng):
        g = generate_random_ptg(rng, RandomPTGConfig(n_tasks=15, density=0.8))
        for src, dst, data in g.edges():
            src_task = g.task(src)
            if not src_task.is_synthetic and not g.task(dst).is_synthetic:
                assert data == pytest.approx(src_task.output_bytes)

    def test_name_override(self, rng):
        g = generate_random_ptg(rng, RandomPTGConfig(n_tasks=5), name="custom-name")
        assert g.name == "custom-name"


class TestWorkloadGeneration:
    def test_count_and_unique_names(self, rng):
        workload = generate_random_workload(rng, n_ptgs=6)
        assert len(workload) == 6
        assert len({p.name for p in workload}) == 6

    def test_explicit_configs(self, rng):
        cfgs = [RandomPTGConfig(n_tasks=5)]
        workload = generate_random_workload(rng, n_ptgs=3, configs=cfgs)
        assert all(len(p.real_tasks()) == 5 for p in workload)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ConfigurationError):
            generate_random_workload(rng, n_ptgs=0)
        with pytest.raises(ConfigurationError):
            generate_random_workload(rng, n_ptgs=2, configs=[])

    def test_sizes_come_from_paper_set(self, rng):
        workload = generate_random_workload(rng, n_ptgs=10)
        for ptg in workload:
            assert len(ptg.real_tasks()) in PAPER_TASK_COUNTS
