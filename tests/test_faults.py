"""Tests for repro.faults: timelines, specs, perturbed execution, repair.

The kill-and-repair goldens pin the full chain on fixed seeds: a
planned stream schedule meets a seeded fault timeline, the perturbed
executor reports the killed/blocked tasks, the repair scheduler
re-maps the affected tail, and the repaired schedule passes the
validator's perturbed-platform mode -- bit-identically on every run.
"""

import json

import pytest

from repro.exceptions import ConfigurationError, MappingError, SimulationError
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.faults.repair import RepairOutcome, repair_schedule
from repro.faults.spec import FaultSpec, compile_timeline
from repro.faults.timeline import (
    DegradationWindow,
    DownWindow,
    FaultTimeline,
    correlated_cluster_plan,
    none_plan,
    rolling_plan,
    single_node_plan,
)
from repro.mapping.timeline import ClusterTimeline
from repro.platform import grid5000
from repro.platform.cluster import Cluster
from repro.scenarios.registry import FAULTS, REGISTRIES
from repro.scenarios.spec import ScenarioSpec
from repro.scheduler.concurrent import ConcurrentScheduler
from repro.simulate.executor import ScheduleExecutor
from repro.utils.rng import ensure_rng
from repro.validate import validate_schedule


@pytest.fixture(scope="module")
def platform():
    return grid5000.rennes()


@pytest.fixture(scope="module")
def workload():
    return make_workload(WorkloadSpec(family="mixed", n_ptgs=4, seed=3, max_tasks=30))


@pytest.fixture(scope="module")
def planned(platform, workload):
    return ConcurrentScheduler().schedule(workload, platform).schedule


# ---------------------------------------------------------------------- #
# windows
# ---------------------------------------------------------------------- #
class TestDownWindow:
    def test_processors_are_sorted_and_deduped(self):
        window = DownWindow("c", (5, 1, 5, 3), 0.0, 10.0)
        assert window.processors == (1, 3, 5)

    def test_overlap_is_half_open(self):
        window = DownWindow("c", (0,), 10.0, 20.0)
        assert window.overlaps(15.0, 25.0)
        assert window.overlaps(5.0, 10.1)
        assert not window.overlaps(20.0, 30.0)  # starts exactly at the end
        assert not window.overlaps(0.0, 10.0)  # finishes exactly at the start

    def test_hits(self):
        window = DownWindow("c", (2, 4), 0.0, 1.0)
        assert window.hits((4, 9))
        assert not window.hits((0, 1, 3))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(cluster_name="c", processors=(), start=0.0, end=1.0),
            dict(cluster_name="c", processors=(-1,), start=0.0, end=1.0),
            dict(cluster_name="c", processors=(0,), start=-1.0, end=1.0),
            dict(cluster_name="c", processors=(0,), start=2.0, end=1.0),
        ],
    )
    def test_invalid_windows_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            DownWindow(**kwargs)

    def test_round_trip(self):
        window = DownWindow("c", (1, 2), 3.0, 9.0, whole_cluster=True)
        assert DownWindow.from_dict(window.to_dict()) == window


class TestDegradationWindow:
    def test_active_is_half_open(self):
        window = DegradationWindow("bandwidth", 10.0, 20.0, 2.0)
        assert window.active(10.0)
        assert window.active(19.0)
        assert not window.active(20.0)
        assert not window.active(9.0)

    def test_bad_kind_and_factor_raise(self):
        with pytest.raises(ConfigurationError):
            DegradationWindow("latency", 0.0, 1.0, 2.0)
        with pytest.raises(ConfigurationError):
            DegradationWindow("slowdown", 0.0, 1.0, 0.5)


class TestFaultTimeline:
    def test_windows_are_canonically_sorted(self):
        timeline = FaultTimeline(
            "p",
            windows=(
                DownWindow("b", (0,), 5.0, 6.0),
                DownWindow("a", (0,), 5.0, 6.0),
                DownWindow("a", (0,), 1.0, 2.0),
            ),
        )
        assert [w.start for w in timeline.windows] == [1.0, 5.0, 5.0]
        assert [w.cluster_name for w in timeline.windows] == ["a", "a", "b"]

    def test_down_processors_start_inclusive_end_exclusive(self):
        timeline = FaultTimeline("p", windows=(DownWindow("c", (3,), 10.0, 20.0),))
        assert timeline.down_processors("c", 10.0) == frozenset({3})
        assert timeline.down_processors("c", 19.99) == frozenset({3})
        assert timeline.down_processors("c", 20.0) == frozenset()
        assert timeline.down_processors("other", 15.0) == frozenset()

    def test_factors_multiply_active_windows(self):
        timeline = FaultTimeline(
            "p",
            degradations=(
                DegradationWindow("bandwidth", 0.0, 10.0, 2.0),
                DegradationWindow("bandwidth", 5.0, 15.0, 3.0),
                DegradationWindow("slowdown", 0.0, 10.0, 1.5, cluster_name="c"),
            ),
        )
        assert timeline.bandwidth_factor(7.0) == pytest.approx(6.0)
        assert timeline.bandwidth_factor(12.0) == pytest.approx(3.0)
        assert timeline.slowdown_factor("c", 1.0) == pytest.approx(1.5)
        assert timeline.slowdown_factor("other", 1.0) == pytest.approx(1.0)

    def test_round_trip(self):
        timeline = FaultTimeline(
            "p",
            windows=(DownWindow("c", (0, 1), 1.0, 2.0),),
            degradations=(DegradationWindow("slowdown", 0.0, 9.0, 1.2, "c"),),
        )
        payload = json.loads(json.dumps(timeline.to_dict()))
        assert FaultTimeline.from_dict(payload) == timeline


# ---------------------------------------------------------------------- #
# plans and the registry axis
# ---------------------------------------------------------------------- #
class TestFaultPlans:
    def test_registry_lists_the_builtin_plans(self):
        assert FAULTS.names() == [
            "none", "single-node", "rolling", "correlated-cluster",
        ]
        assert REGISTRIES["faults"] is FAULTS

    def test_none_plan_is_empty(self, platform):
        assert none_plan(platform, ensure_rng(0)).is_empty

    def test_plans_are_deterministic_in_the_seed(self, platform):
        for plan in (single_node_plan, rolling_plan, correlated_cluster_plan):
            a = plan(platform, ensure_rng(7), count=3)
            b = plan(platform, ensure_rng(7), count=3)
            assert a == b, plan.__name__

    def test_rolling_sweeps_clusters_in_order(self):
        platform = grid5000.composed()
        timeline = rolling_plan(platform, ensure_rng(0), count=3, gap=100.0)
        names = [c.name for c in platform]
        assert [w.cluster_name for w in timeline.windows] == names[:3]
        starts = sorted(w.start for w in timeline.windows)
        assert starts[1] - starts[0] == pytest.approx(100.0)

    def test_correlated_plan_takes_the_whole_cluster(self, platform):
        timeline = correlated_cluster_plan(platform, ensure_rng(1))
        (window,) = timeline.windows
        assert window.whole_cluster
        cluster = platform.cluster(window.cluster_name)
        assert window.processors == tuple(range(cluster.num_processors))

    def test_degradation_options_attach_windows(self, platform):
        timeline = single_node_plan(
            platform, ensure_rng(0), bandwidth=2.0, slowdown=1.5
        )
        kinds = sorted(d.kind for d in timeline.degradations)
        assert kinds == ["bandwidth", "slowdown"]


class TestFaultSpec:
    def test_defaults_and_label(self):
        spec = FaultSpec()
        assert spec.plan == "none"
        assert spec.label() == "none-x1-seed0"

    def test_round_trip(self):
        spec = FaultSpec(plan="rolling", seed=4, count=2, slowdown=1.25)
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        assert spec.hash_payload() == spec.to_dict()

    def test_unknown_keys_and_bad_values_raise(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            FaultSpec.from_dict({"plan": "none", "blast_radius": 3})
        with pytest.raises(ConfigurationError):
            FaultSpec(plan="meteor")
        with pytest.raises(ConfigurationError):
            FaultSpec(count=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(bandwidth=0.5)

    def test_compile_is_deterministic(self, platform):
        spec = FaultSpec(plan="rolling", seed=9, count=2)
        assert compile_timeline(spec, platform) == compile_timeline(spec, platform)
        assert len(compile_timeline(spec, platform).windows) == 2


class TestScenarioWiring:
    BASE = {
        "platform": "rennes",
        "workload": {"family": "fft", "n_ptgs": 2},
        "strategies": ["S"],
    }

    def test_shorthand_and_round_trip(self):
        spec = ScenarioSpec.from_dict({**self.BASE, "faults": True})
        assert spec.faults == FaultSpec()
        spec = ScenarioSpec.from_dict({**self.BASE, "faults": {"plan": "rolling"}})
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_hash_extends_only_when_set(self):
        plain = ScenarioSpec.from_dict(dict(self.BASE))
        faulty = ScenarioSpec.from_dict({**self.BASE, "faults": True})
        assert "faults" not in plain.to_dict()
        assert plain.content_hash() != faulty.content_hash()

    def test_batch_run_rejects_faults(self):
        from repro.scenarios.run import run_scenario

        spec = ScenarioSpec.from_dict({**self.BASE, "faults": True})
        with pytest.raises(ConfigurationError, match="faults section"):
            run_scenario(spec)

    def test_batch_shard_rejects_faults(self):
        from repro.campaigns.shards import ExperimentShard

        spec = ScenarioSpec.from_dict({**self.BASE, "faults": True})
        with pytest.raises(ConfigurationError, match="faults section"):
            ExperimentShard.from_scenario(spec)


# ---------------------------------------------------------------------- #
# timeline blocking
# ---------------------------------------------------------------------- #
class TestTimelineBlock:
    def test_block_pushes_free_times_monotonically(self):
        timeline = ClusterTimeline(Cluster("c", 4, 1e9))
        timeline.block((0, 2), 10.0)
        assert timeline.earliest_start(4, 0.0) == 10.0
        assert timeline.earliest_start(2, 0.0) == 0.0  # procs 1 and 3 are free
        timeline.block((0,), 5.0)  # earlier than the current block: no-op
        assert timeline.earliest_start(4, 0.0) == 10.0

    def test_block_validates_inputs(self):
        timeline = ClusterTimeline(Cluster("c", 2, 1e9))
        with pytest.raises(MappingError):
            timeline.block((5,), 1.0)
        with pytest.raises(MappingError):
            timeline.block((0,), -1.0)


# ---------------------------------------------------------------------- #
# perturbed execution
# ---------------------------------------------------------------------- #
def _mid_flight_window(schedule):
    """A window guaranteed to strike the longest planned task mid-flight."""
    victim = max(schedule, key=lambda e: e.finish - e.start)
    mid = 0.5 * (victim.start + victim.finish)
    return victim, FaultTimeline(
        schedule.platform_name,
        windows=(DownWindow(victim.cluster_name, victim.processors[:1], mid, mid + 50.0),),
    )


class TestPerturbedExecutor:
    def test_without_faults_behaviour_is_unchanged(self, platform, workload, planned):
        report = ScheduleExecutor(platform).execute(workload, planned)
        assert report.complete and not report.failures

    def test_strike_kills_and_starves(self, platform, workload, planned):
        victim, timeline = _mid_flight_window(planned)
        report = ScheduleExecutor(platform).execute(workload, planned, faults=timeline)
        assert not report.complete
        reasons = {f.reason for f in report.failures}
        assert "killed" in reasons
        assert reasons <= {"killed", "unavailable", "blocked"}
        assert victim.ptg_name in report.failed_applications()

    def test_perturbed_replay_is_deterministic(self, platform, workload, planned):
        _, timeline = _mid_flight_window(planned)
        runs = [
            ScheduleExecutor(platform).execute(workload, planned, faults=timeline)
            for _ in range(2)
        ]
        key = lambda r: [(f.ptg_name, f.task_id, f.reason, f.time) for f in r.failures]
        assert key(runs[0]) == key(runs[1])

    def test_slowdown_stretches_measured_durations(self, platform, workload, planned):
        timeline = FaultTimeline(
            platform.name,
            degradations=(DegradationWindow("slowdown", 0.0, 1e9, 2.0),),
        )
        base = ScheduleExecutor(platform).execute(workload, planned)
        slow = ScheduleExecutor(platform).execute(workload, planned, faults=timeline)
        assert slow.complete  # degradations stretch, they never kill
        assert slow.global_makespan() > base.global_makespan()

    def test_bandwidth_degradation_inflates_transferred_bytes(
        self, platform, workload, planned
    ):
        timeline = FaultTimeline(
            platform.name,
            degradations=(DegradationWindow("bandwidth", 0.0, 1e9, 3.0),),
        )
        base = ScheduleExecutor(platform).execute(workload, planned)
        slow = ScheduleExecutor(platform).execute(workload, planned, faults=timeline)
        if base.network_bytes > 0:
            assert slow.network_bytes == pytest.approx(3.0 * base.network_bytes)

    def test_deadlock_without_faults_still_raises(self, platform, workload, planned):
        # an empty timeline keeps the strict deadlock error on the
        # unperturbed path (nothing can fail, so nothing is "blocked")
        report = ScheduleExecutor(platform).execute(
            workload, planned, faults=FaultTimeline(platform.name)
        )
        assert report.complete


# ---------------------------------------------------------------------- #
# repair
# ---------------------------------------------------------------------- #
class TestRepair:
    def test_empty_timeline_returns_the_original_schedule(
        self, platform, workload, planned
    ):
        outcome = repair_schedule(
            workload, planned, platform, FaultTimeline(platform.name)
        )
        assert outcome.schedule is planned
        assert outcome.events == []
        assert outcome.makespan_inflation == pytest.approx(1.0)

    def test_kill_and_repair_golden(self, platform, workload, planned):
        """Fixed seeds, pinned outcome: the golden for the whole chain."""
        victim, timeline = _mid_flight_window(planned)
        outcome = repair_schedule(workload, planned, platform, timeline)
        assert isinstance(outcome, RepairOutcome)
        assert len(outcome.killed_tasks) == 1
        (event,) = outcome.events
        (killed,) = event.killed
        assert (killed.ptg_name, killed.task_id) == (victim.ptg_name, victim.task_id)
        assert killed.work_lost > 0
        assert killed.work_reexecuted == pytest.approx(
            (victim.finish - victim.start) * len(victim.processors)
        )
        metrics = outcome.metrics()
        assert set(metrics) == {
            "events", "killed_tasks", "baseline_makespan", "repaired_makespan",
            "makespan_inflation", "recovery_latency", "work_lost",
            "work_reexecuted",
        }

    def test_repaired_schedule_is_validator_clean_in_perturbed_mode(
        self, platform, workload, planned
    ):
        _, timeline = _mid_flight_window(planned)
        outcome = repair_schedule(workload, planned, platform, timeline)
        report = validate_schedule(
            outcome.schedule, ptgs=workload, platform=platform, faults=timeline
        )
        assert report.ok, report.summary()
        assert "availability" in report.checks

    def test_repair_is_bit_identical_across_runs(self, platform, workload, planned):
        _, timeline = _mid_flight_window(planned)
        a = repair_schedule(workload, planned, platform, timeline)
        b = repair_schedule(workload, planned, platform, timeline)
        rows = lambda s: [
            (e.ptg_name, e.task_id, e.cluster_name, e.processors, e.start, e.finish)
            for e in sorted(s, key=lambda e: (e.ptg_name, e.task_id))
        ]
        assert rows(a.schedule) == rows(b.schedule)
        assert a.metrics() == b.metrics()

    def test_baseline_schedule_violates_perturbed_mode(
        self, platform, workload, planned
    ):
        """The original schedule overlaps the window: perturbed mode rejects it."""
        _, timeline = _mid_flight_window(planned)
        report = validate_schedule(
            planned, ptgs=workload, platform=platform, faults=timeline
        )
        assert not report.ok
        assert any(v.kind == "availability" for v in report.violations)
