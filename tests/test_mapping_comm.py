"""Tests for the communication estimator used by the mappers."""

import pytest

from repro.exceptions import MappingError
from repro.mapping.comm import CommunicationEstimator


class TestTransferTime:
    def test_intra_cluster_is_free(self, small_platform):
        comm = CommunicationEstimator(small_platform)
        name = small_platform.cluster_names()[0]
        assert comm.transfer_time(1e9, name, name) == 0.0

    def test_zero_bytes_is_free(self, small_platform):
        comm = CommunicationEstimator(small_platform)
        a, b = small_platform.cluster_names()
        assert comm.transfer_time(0.0, a, b) == 0.0

    def test_inter_cluster_positive_and_monotone(self, small_platform):
        comm = CommunicationEstimator(small_platform)
        a, b = small_platform.cluster_names()
        small = comm.transfer_time(1e6, a, b)
        large = comm.transfer_time(1e9, a, b)
        assert 0 < small < large

    def test_includes_latency(self, small_platform):
        comm = CommunicationEstimator(small_platform)
        a, b = small_platform.cluster_names()
        assert comm.transfer_time(1.0, a, b) >= small_platform.topology.path_latency(a, b)

    def test_negative_bytes_rejected(self, small_platform):
        comm = CommunicationEstimator(small_platform)
        a, b = small_platform.cluster_names()
        with pytest.raises(MappingError):
            comm.transfer_time(-1.0, a, b)

    def test_unknown_cluster_rejected(self, small_platform):
        comm = CommunicationEstimator(small_platform)
        a = small_platform.cluster_names()[0]
        with pytest.raises(MappingError):
            comm.transfer_time(1.0, a, "nope")

    def test_split_switch_at_least_as_slow(self, small_platform, split_switch_platform):
        shared = CommunicationEstimator(small_platform)
        split = CommunicationEstimator(split_switch_platform)
        a1, b1 = small_platform.cluster_names()
        a2, b2 = split_switch_platform.cluster_names()
        assert split.transfer_time(1e9, a2, b2) >= shared.transfer_time(1e9, a1, b1)

    def test_bandwidth_accounts_for_nic_pools(self, small_platform):
        """The transfer is bounded by the smaller cluster's aggregate NICs."""
        comm = CommunicationEstimator(small_platform)
        a, b = small_platform.cluster_names()
        small_cluster = small_platform.cluster(a)
        expected_bw = min(
            small_platform.topology.switches[0].bandwidth,
            small_cluster.num_processors * small_platform.topology.link_bandwidth,
            small_platform.cluster(b).num_processors
            * small_platform.topology.link_bandwidth,
        )
        data = 1e9
        expected = small_platform.topology.path_latency(a, b) + data / expected_bw
        assert comm.transfer_time(data, a, b) == pytest.approx(expected)

    def test_worst_case_covers_all_pairs(self, small_platform):
        comm = CommunicationEstimator(small_platform)
        names = small_platform.cluster_names()
        worst = comm.worst_case_transfer_time(5e8)
        for a in names:
            for b in names:
                assert comm.transfer_time(5e8, a, b) <= worst + 1e-12
