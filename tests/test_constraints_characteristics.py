"""Tests for the PS/WPS application characteristics."""

import pytest

from repro.constraints.characteristics import (
    CHARACTERISTICS,
    critical_path_characteristic,
    get_characteristic,
    width_characteristic,
    work_characteristic,
)
from repro.exceptions import ConfigurationError

from tests.conftest import make_chain_ptg, make_fork_join_ptg


class TestWorkCharacteristic:
    def test_equals_total_flops(self, small_platform, diamond_ptg):
        assert work_characteristic(diamond_ptg, small_platform) == pytest.approx(
            diamond_ptg.total_work()
        )

    def test_scales_with_task_count(self, small_platform):
        small = make_chain_ptg(n=2)
        big = make_chain_ptg(n=8)
        assert work_characteristic(big, small_platform) > work_characteristic(
            small, small_platform
        )


class TestWidthCharacteristic:
    def test_chain_width_one(self, small_platform, chain_ptg):
        assert width_characteristic(chain_ptg, small_platform) == 1.0

    def test_fork_join_width(self, small_platform, fork_join_ptg):
        assert width_characteristic(fork_join_ptg, small_platform) == 5.0


class TestCriticalPathCharacteristic:
    def test_chain_cp_is_sum_of_sequential_times(self, small_platform):
        ptg = make_chain_ptg(n=3, flops=4e9, alpha=0.1)
        # reference speed is 2 GFlop/s -> 2 seconds per task
        assert critical_path_characteristic(ptg, small_platform) == pytest.approx(6.0)

    def test_longer_chain_longer_cp(self, small_platform):
        short = make_chain_ptg(n=2)
        long = make_chain_ptg(n=6)
        assert critical_path_characteristic(long, small_platform) > (
            critical_path_characteristic(short, small_platform)
        )

    def test_fork_join_cp_independent_of_width(self, small_platform):
        narrow = make_fork_join_ptg(width=2)
        wide = make_fork_join_ptg(width=8)
        assert critical_path_characteristic(
            narrow, small_platform
        ) == pytest.approx(critical_path_characteristic(wide, small_platform))


class TestRegistry:
    def test_all_three_registered(self):
        assert set(CHARACTERISTICS) == {"cp", "width", "work"}

    def test_lookup_case_insensitive(self):
        assert get_characteristic("CP") is critical_path_characteristic

    def test_unknown_characteristic(self):
        with pytest.raises(ConfigurationError):
            get_characteristic("volume")
