"""Tests for the utilisation diagnostics."""

import pytest

from repro.mapping.schedule import Schedule, ScheduledTask
from repro.metrics.utilisation import (
    per_cluster_utilisation,
    schedule_utilisation,
    work_efficiency,
)
from repro.exceptions import ConfigurationError


def build_schedule(platform):
    """Occupy half of the first cluster for the whole horizon."""
    cluster = platform.clusters[0]
    schedule = Schedule(platform.name)
    half = cluster.num_processors // 2
    schedule.add(
        ScheduledTask(
            ptg_name="app", task_id=0, cluster_name=cluster.name,
            processors=tuple(range(half)), start=0.0, finish=10.0,
        )
    )
    return schedule


class TestScheduleUtilisation:
    def test_half_cluster_fraction(self, small_platform):
        schedule = build_schedule(small_platform)
        cluster = small_platform.clusters[0]
        expected = (cluster.num_processors // 2) / small_platform.total_processors
        assert schedule_utilisation(schedule, small_platform) == pytest.approx(expected)

    def test_empty_schedule_zero(self, small_platform):
        assert schedule_utilisation(Schedule("x"), small_platform) == 0.0

    def test_bounded_by_one(self, small_platform):
        schedule = Schedule(small_platform.name)
        for index, cluster in enumerate(small_platform):
            schedule.add(
                ScheduledTask(
                    ptg_name="app", task_id=index,
                    cluster_name=cluster.name,
                    processors=tuple(range(cluster.num_processors)),
                    start=0.0, finish=5.0,
                )
            )
        assert schedule_utilisation(schedule, small_platform) == pytest.approx(1.0)


class TestWorkEfficiency:
    def test_fraction_of_capacity(self, small_platform):
        schedule = build_schedule(small_platform)
        capacity = small_platform.total_power_flops * 10.0
        assert work_efficiency(capacity / 2, schedule, small_platform) == pytest.approx(0.5)

    def test_zero_horizon(self, small_platform):
        assert work_efficiency(1e9, Schedule("x"), small_platform) == 0.0

    def test_negative_work_rejected(self, small_platform):
        with pytest.raises(ConfigurationError):
            work_efficiency(-1.0, build_schedule(small_platform), small_platform)


class TestPerClusterUtilisation:
    def test_only_used_cluster_busy(self, small_platform):
        schedule = build_schedule(small_platform)
        util = per_cluster_utilisation(schedule, small_platform)
        names = small_platform.cluster_names()
        assert util[names[0]] > 0
        assert util[names[1]] == 0.0

    def test_empty_schedule(self, small_platform):
        util = per_cluster_utilisation(Schedule("x"), small_platform)
        assert all(v == 0.0 for v in util.values())
