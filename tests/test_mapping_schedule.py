"""Tests for the Schedule / ScheduledTask data structures."""

import pytest

from repro.exceptions import MappingError
from repro.mapping.schedule import Schedule, ScheduledTask

from tests.conftest import make_chain_ptg


def entry(ptg="app", task=0, cluster="c0", procs=(0,), start=0.0, finish=1.0):
    return ScheduledTask(
        ptg_name=ptg, task_id=task, cluster_name=cluster, processors=tuple(procs),
        start=start, finish=finish,
    )


class TestScheduledTask:
    def test_properties(self):
        e = entry(procs=(0, 1, 2), start=1.0, finish=3.5)
        assert e.num_processors == 3
        assert e.duration == pytest.approx(2.5)

    def test_invalid_window(self):
        with pytest.raises(MappingError):
            entry(start=2.0, finish=1.0)
        with pytest.raises(MappingError):
            entry(start=-1.0, finish=1.0)

    def test_empty_processors(self):
        with pytest.raises(MappingError):
            entry(procs=())

    def test_duplicate_processors(self):
        with pytest.raises(MappingError):
            entry(procs=(1, 1))


class TestSchedule:
    def test_add_and_lookup(self):
        s = Schedule("p")
        s.add(entry(task=0))
        s.add(entry(task=1, start=1.0, finish=2.0))
        assert len(s) == 2
        assert s.has_entry("app", 0)
        assert s.entry("app", 1).finish == 2.0

    def test_duplicate_rejected(self):
        s = Schedule("p")
        s.add(entry())
        with pytest.raises(MappingError):
            s.add(entry())

    def test_missing_lookup(self):
        s = Schedule("p")
        with pytest.raises(MappingError):
            s.entry("app", 0)
        with pytest.raises(MappingError):
            s.entries_of("app")

    def test_makespan_counts_from_submission(self):
        s = Schedule("p")
        s.add(entry(task=0, start=5.0, finish=9.0))
        assert s.makespan("app") == 9.0
        assert s.span("app") == pytest.approx(4.0)

    def test_global_makespan(self):
        s = Schedule("p")
        s.add(entry(ptg="a", task=0, finish=4.0))
        s.add(entry(ptg="b", task=0, finish=7.0))
        assert s.global_makespan() == 7.0
        assert s.makespans() == {"a": 4.0, "b": 7.0}
        assert Schedule("empty").global_makespan() == 0.0

    def test_entries_on_cluster_and_work(self):
        s = Schedule("p")
        s.add(entry(task=0, cluster="c0", procs=(0, 1), start=0.0, finish=2.0))
        s.add(entry(task=1, cluster="c1", procs=(0,), start=0.0, finish=1.0))
        assert len(s.entries_on("c0")) == 1
        assert s.work_on("c0") == pytest.approx(4.0)
        assert s.work_on("c1") == pytest.approx(1.0)

    def test_application_names_in_insertion_order(self):
        s = Schedule("p")
        s.add(entry(ptg="b", task=0))
        s.add(entry(ptg="a", task=0))
        assert s.application_names() == ["b", "a"]


class TestValidation:
    def test_overlap_detected(self):
        s = Schedule("p")
        s.add(entry(task=0, procs=(0,), start=0.0, finish=2.0))
        s.add(entry(task=1, procs=(0,), start=1.0, finish=3.0))
        with pytest.raises(MappingError):
            s.validate_no_overlap()

    def test_back_to_back_allowed(self):
        s = Schedule("p")
        s.add(entry(task=0, procs=(0,), start=0.0, finish=2.0))
        s.add(entry(task=1, procs=(0,), start=2.0, finish=3.0))
        s.validate_no_overlap()

    def test_different_processors_allowed(self):
        s = Schedule("p")
        s.add(entry(task=0, procs=(0,), start=0.0, finish=2.0))
        s.add(entry(task=1, procs=(1,), start=0.0, finish=2.0))
        s.validate_no_overlap()

    def test_precedence_violation_detected(self):
        ptg = make_chain_ptg("app", n=2)
        s = Schedule("p")
        s.add(entry(task=0, start=0.0, finish=2.0))
        s.add(entry(task=1, start=1.0, finish=3.0, procs=(1,)))
        with pytest.raises(MappingError):
            s.validate_precedences([ptg])

    def test_precedence_ok(self):
        ptg = make_chain_ptg("app", n=2)
        s = Schedule("p")
        s.add(entry(task=0, start=0.0, finish=2.0))
        s.add(entry(task=1, start=2.0, finish=3.0, procs=(1,)))
        s.validate_precedences([ptg])
