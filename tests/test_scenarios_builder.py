"""Tests for the fluent scenario builder and its sweep expansion."""

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios.builder import SWEEP_AXES, Scenario
from repro.scenarios.spec import ScenarioSpec


class TestBuild:
    def test_issue_example_shape(self):
        spec = (
            Scenario.on("rennes")
            .workload(family="fft", n_ptgs=8)
            .pipeline(allocator="scrap", strategy="WPS-width", mapper="ready-list")
            .build()
        )
        assert spec.platform == "rennes"
        assert spec.workload.family == "fft"
        assert spec.workload.n_ptgs == 8
        assert spec.pipeline.allocator == "scrap"
        assert spec.pipeline.mapper == "ready-list"
        assert spec.strategies == ("WPS-width",)

    def test_defaults(self):
        assert Scenario.on("lille").build() == ScenarioSpec(platform="lille")

    def test_strategies_method(self):
        spec = Scenario.on("lille").strategies("S", "ES").build()
        assert spec.strategies == ("S", "ES")

    def test_build_validates(self):
        with pytest.raises(ConfigurationError):
            Scenario.on("atlantis").build()

    def test_setters_override_incrementally(self):
        builder = Scenario.on("lille").workload(family="fft").workload(n_ptgs=6)
        spec = builder.build()
        assert (spec.workload.family, spec.workload.n_ptgs) == ("fft", 6)


class TestSweep:
    def test_cross_product_size_and_order(self):
        specs = (
            Scenario.on("lille")
            .workload(family="fft", n_ptgs=2)
            .sweep(allocator=["hcpa", "scrap"], packing=[True, False])
        )
        assert len(specs) == 4
        assert [(s.pipeline.allocator, s.pipeline.packing) for s in specs] == [
            ("hcpa", True), ("hcpa", False), ("scrap", True), ("scrap", False),
        ]

    def test_strategy_axis_expands_to_single_strategy_specs(self):
        specs = Scenario.on("lille").sweep(strategy=["S", "ES", "WPS-work"])
        assert [s.strategies for s in specs] == [("S",), ("ES",), ("WPS-work",)]

    def test_strategy_axis_accepts_strategy_sets(self):
        specs = Scenario.on("lille").sweep(strategy=[("S", "ES"), ("WPS-cp",)])
        assert [s.strategies for s in specs] == [("S", "ES"), ("WPS-cp",)]

    def test_scalar_axis_value_is_wrapped(self):
        specs = Scenario.on("lille").sweep(allocator="hcpa", n_ptgs=[2, 4])
        assert [(s.pipeline.allocator, s.workload.n_ptgs) for s in specs] == [
            ("hcpa", 2), ("hcpa", 4),
        ]

    def test_axes_order_is_canonical(self):
        """platform varies slowest regardless of keyword order."""
        specs = Scenario.on("lille").sweep(
            mapper=["ready-list", "global-order"], platform=["lille", "nancy"]
        )
        assert [(s.platform, s.pipeline.mapper) for s in specs] == [
            ("lille", "ready-list"), ("lille", "global-order"),
            ("nancy", "ready-list"), ("nancy", "global-order"),
        ]

    def test_full_scenario_space_axes(self):
        """Every axis of the acceptance criteria is sweepable at once."""
        specs = Scenario.on("lille").workload(seed=1).sweep(
            platform=["lille", "nancy"],
            family=["fft", "strassen"],
            allocator=["hcpa", "scrap-max"],
            strategy=["S", "ES"],
            mapper=["ready-list", "global-order"],
            packing=[True, False],
        )
        assert len(specs) == 2 ** 6
        assert len({s.content_hash() for s in specs}) == len(specs)

    def test_unknown_axis_raises(self):
        with pytest.raises(ConfigurationError) as err:
            Scenario.on("lille").sweep(scheduler=["x"])
        assert str(list(SWEEP_AXES)) in str(err.value)

    def test_empty_axis_raises(self):
        with pytest.raises(ConfigurationError):
            Scenario.on("lille").sweep(allocator=[])

    def test_sweep_does_not_mutate_the_builder(self):
        builder = Scenario.on("lille").workload(family="fft")
        builder.sweep(allocator=["hcpa", "scrap"])
        spec = builder.build()
        assert spec.pipeline.allocator == "scrap-max"
        assert spec.workload.family == "fft"
