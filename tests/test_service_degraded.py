"""Degraded-tenant tests of the admission daemon.

A session raising out of an admission must not kill the daemon: the
offending tenant is marked degraded and rejected with 503 + Retry-After,
while every other tenant keeps being served, the status endpoints report
the degradation, and the drain worker stays alive for a later operator
intervention.
"""

from __future__ import annotations

import asyncio

from repro.service.app import Request, ServiceApp

from service_harness import (
    chain_ptg,
    make_arrivals,
    make_service_spec,
    submit_request,
    tenant_rows,
)


def _break_admission(app, tenant_name, message="session corrupted"):
    """Make *tenant_name*'s session raise on its next admission."""
    tenant = app.tenants[tenant_name]

    def broken(arrival):
        raise RuntimeError(message)

    tenant.session.admit = broken


def test_raising_session_degrades_only_its_tenant():
    spec = make_service_spec()
    arrivals = make_arrivals(6, tenants=("a", "b"))

    async def run():
        app = ServiceApp(spec)
        # first arrival per tenant admitted cleanly, creating the sessions
        for tenant, at, ptg in arrivals[:2]:
            response = await app.handle(submit_request(tenant, at, ptg))
            assert response.status == 202
        await app.quiesce()
        _break_admission(app, "a")

        for tenant, at, ptg in arrivals[2:]:
            response = await app.handle(submit_request(tenant, at, ptg))
            assert response.status == 202  # accepted; the drain fails later
        await app.quiesce()

        a, b = app.tenants["a"], app.tenants["b"]
        assert a.degraded == "RuntimeError: session corrupted"
        assert b.degraded is None
        # tenant b kept being served through a's degradation
        assert b.session.admitted == 3
        # both of a's queued arrivals hit the broken session
        assert app.registry.counter("service.admission_errors").value == 2
        assert app.registry.gauge("service.degraded_tenants").value == 1

        # the degraded tenant is turned away with a retry hint ...
        rejected = await app.handle(submit_request("a", 999.0, chain_ptg("late-a")))
        assert rejected.status == 503
        assert rejected.headers["Retry-After"] == f"{spec.service.retry_after:g}"
        assert rejected.body["retry_after"] == spec.service.retry_after
        assert "degraded" in rejected.body["error"]
        # ... while the healthy tenant still gets a 202 and a schedule
        accepted = await app.handle(submit_request("b", 999.0, chain_ptg("late-b")))
        assert accepted.status == 202
        await app.quiesce("b")
        rows = await tenant_rows(app, "b")
        assert rows  # validator-clean schedule still served

        await app.stop()

    asyncio.run(run())


def test_degradation_is_visible_in_healthz_and_status():
    spec = make_service_spec()
    arrivals = make_arrivals(4, tenants=("a", "b"))

    async def run():
        app = ServiceApp(spec)
        for tenant, at, ptg in arrivals[:2]:
            await app.handle(submit_request(tenant, at, ptg))
        await app.quiesce()

        healthy = await app.handle(Request("GET", "/healthz"))
        assert healthy.status == 200
        assert healthy.body["ok"] is True
        assert healthy.body["degraded"] == []

        _break_admission(app, "b")
        for tenant, at, ptg in arrivals[2:]:
            await app.handle(submit_request(tenant, at, ptg))
        await app.quiesce()

        degraded = await app.handle(Request("GET", "/healthz"))
        assert degraded.status == 200  # the daemon itself is alive
        assert degraded.body["ok"] is False
        assert degraded.body["degraded"] == ["b"]

        status = await app.handle(Request("GET", "/status", {"tenant": "b"}))
        assert status.body["degraded"] == "RuntimeError: session corrupted"
        status_a = await app.handle(Request("GET", "/status", {"tenant": "a"}))
        assert status_a.body["degraded"] is None

        await app.stop()

    asyncio.run(run())


def test_drain_worker_survives_the_raise():
    """The degraded tenant's worker loop keeps running -- stop() still works."""
    spec = make_service_spec()
    (arrival,) = make_arrivals(1, tenants=("solo",))

    async def run():
        app = ServiceApp(spec)
        tenant_name, at, ptg = arrival
        await app.handle(submit_request(tenant_name, at, ptg))
        await app.quiesce()
        _break_admission(app, "solo")
        await app.handle(submit_request("solo", at + 1.0, chain_ptg("late-solo")))
        await app.quiesce()
        tenant = app.tenants["solo"]
        assert tenant.degraded is not None
        assert not tenant.worker.done()  # the loop survived the raise
        await app.stop()  # a dead worker would hang or raise here
        assert tenant.worker.done()

    asyncio.run(run())
