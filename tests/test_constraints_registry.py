"""Tests for the strategy registry."""

import pytest

from repro.constraints.registry import (
    PAPER_MU,
    STRATEGY_NAMES,
    default_mu,
    paper_strategies,
    strategy,
)
from repro.constraints.strategies import (
    EqualShareStrategy,
    ProportionalShareStrategy,
    SelfishStrategy,
    WeightedProportionalShareStrategy,
)
from repro.exceptions import ConfigurationError


class TestStrategyFactory:
    def test_all_names_instantiable(self):
        for name in STRATEGY_NAMES:
            instance = strategy(name)
            assert instance.name == name

    def test_types(self):
        assert isinstance(strategy("S"), SelfishStrategy)
        assert isinstance(strategy("ES"), EqualShareStrategy)
        assert isinstance(strategy("PS-work"), ProportionalShareStrategy)
        assert isinstance(strategy("WPS-cp"), WeightedProportionalShareStrategy)

    def test_case_insensitive(self):
        assert strategy("wps-WIDTH").name == "WPS-width"

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            strategy("FAIR")

    def test_mu_override(self):
        assert strategy("WPS-work", mu=0.3).mu == 0.3

    def test_paper_mu_defaults(self):
        assert strategy("WPS-work").mu == 0.7
        assert strategy("WPS-cp").mu == 0.5
        assert strategy("WPS-width", family="random").mu == 0.5
        assert strategy("WPS-width", family="fft").mu == 0.3


class TestPaperMu:
    def test_table_contents(self):
        assert PAPER_MU["work"]["default"] == 0.7
        assert PAPER_MU["cp"]["default"] == 0.5
        assert PAPER_MU["width"]["fft"] == 0.3

    def test_default_mu_unknown_characteristic(self):
        with pytest.raises(ConfigurationError):
            default_mu("volume")

    def test_default_mu_unknown_family_falls_back(self):
        assert default_mu("work", "unknown-family") == 0.7


class TestPaperStrategies:
    def test_full_set(self):
        names = [s.name for s in paper_strategies("random")]
        assert names == STRATEGY_NAMES

    def test_strassen_excludes_width(self):
        names = [s.name for s in paper_strategies("strassen", include_width=False)]
        assert "PS-width" not in names and "WPS-width" not in names
        assert len(names) == 6

    def test_fft_width_mu(self):
        strategies = {s.name: s for s in paper_strategies("fft")}
        assert strategies["WPS-width"].mu == 0.3
