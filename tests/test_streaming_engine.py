"""Tests of the incremental streaming session and its result object."""

import pytest

from repro.constraints.strategies import EqualShareStrategy, SelfishStrategy
from repro.exceptions import ConfigurationError
from repro.streaming.engine import Arrival, StreamResult, StreamSession

from tests.conftest import make_chain_ptg


class TestAdmission:
    def test_completion_returned_and_tracked(self, medium_platform):
        session = StreamSession(medium_platform, EqualShareStrategy())
        done = session.admit(Arrival(make_chain_ptg("one", n=3, flops=40e9), 0.0))
        assert done > 0
        assert session.admitted == 1
        assert session.active_applications == ["one"]

    def test_arrivals_cannot_travel_back_in_time(self, medium_platform):
        session = StreamSession(medium_platform)
        session.admit(Arrival(make_chain_ptg("late", n=2), 100.0))
        with pytest.raises(ConfigurationError):
            session.admit(Arrival(make_chain_ptg("early", n=2), 50.0))

    def test_duplicate_names_rejected_across_batches(self, medium_platform):
        session = StreamSession(medium_platform)
        session.feed([Arrival(make_chain_ptg("same", n=2), 0.0)])
        with pytest.raises(ConfigurationError):
            session.feed([Arrival(make_chain_ptg("same", n=2), 10.0)])

    def test_feed_sorts_within_batch(self, medium_platform):
        session = StreamSession(medium_platform)
        session.feed(
            [
                Arrival(make_chain_ptg("b", n=2), 50.0),
                Arrival(make_chain_ptg("a", n=2), 0.0),
            ]
        )
        assert session.result().application_names == ["a", "b"]

    def test_empty_result_rejected(self, medium_platform):
        with pytest.raises(ConfigurationError):
            StreamSession(medium_platform).result()

    def test_completed_applications_leave_the_active_set(self, medium_platform):
        session = StreamSession(medium_platform, EqualShareStrategy())
        done = session.admit(Arrival(make_chain_ptg("first", n=2, flops=10e9), 0.0))
        session.admit(Arrival(make_chain_ptg("second", n=2, flops=10e9), done * 2))
        result = session.result()
        assert result.active_at_admission["second"] == []
        assert result.betas["second"] == pytest.approx(1.0)


class TestStreamResult:
    def _result(self, medium_platform):
        session = StreamSession(medium_platform, SelfishStrategy())
        session.feed(
            [
                Arrival(make_chain_ptg("a", n=3, flops=30e9), 0.0, tenant="t0"),
                Arrival(make_chain_ptg("b", n=3, flops=30e9), 40.0, tenant="t1"),
            ]
        )
        return session.result()

    def test_o1_accessors_match_schedule_scans(self, medium_platform):
        result = self._result(medium_platform)
        assert isinstance(result, StreamResult)
        for name in result.completion_times:
            assert result.completion_time(name) == result.schedule.makespan(name)
        assert result.horizon() == result.schedule.global_makespan()

    def test_waiting_times_measured_from_submission(self, medium_platform):
        result = self._result(medium_platform)
        for name, wait in result.waiting_times().items():
            assert wait >= 0
            assert result.first_starts[name] == pytest.approx(
                result.arrival_times[name] + wait
            )

    def test_tenants_recorded(self, medium_platform):
        result = self._result(medium_platform)
        assert result.tenants == {"a": "t0", "b": "t1"}

    def test_unknown_application_raises(self, medium_platform):
        with pytest.raises(ConfigurationError):
            self._result(medium_platform).completion_time("nope")

    def test_event_timeline_is_ordered_and_complete(self, medium_platform):
        result = self._result(medium_platform)
        events = result.events()
        assert len(events) == 4  # two arrivals + two completions
        assert [e.time for e in events] == sorted(e.time for e in events)
        kinds = {(e.kind, e.name) for e in events}
        assert ("arrival", "a") in kinds and ("completion", "b") in kinds


class TestIncrementalContinuation:
    def test_snapshot_then_continue(self, medium_platform):
        """A session keeps scheduling after a result snapshot was taken."""
        session = StreamSession(medium_platform)
        session.feed([Arrival(make_chain_ptg("a", n=2, flops=20e9), 0.0)])
        first = session.result()
        assert first.application_names == ["a"]
        session.feed([Arrival(make_chain_ptg("b", n=2, flops=20e9), 10.0)])
        second = session.result()
        assert second.application_names == ["a", "b"]
        # the earlier application's placement is untouched
        assert second.completion_times["a"] == first.completion_times["a"]
