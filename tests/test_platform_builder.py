"""Tests for repro.platform.builder."""

import pytest

from repro.exceptions import InvalidPlatformError
from repro.platform.builder import (
    heterogeneous_platform,
    homogeneous_platform,
    random_platform,
    single_cluster_platform,
)


class TestSingleCluster:
    def test_default(self):
        p = single_cluster_platform()
        assert len(p) == 1
        assert p.total_processors == 64

    def test_custom(self):
        p = single_cluster_platform(num_processors=8, speed_gflops=2.0, name="tiny")
        assert p.total_power_gflops == 16.0
        assert p.name == "tiny"


class TestHomogeneous:
    def test_identical_clusters(self):
        p = homogeneous_platform(num_clusters=4, processors_per_cluster=10, speed_gflops=3.0)
        assert len(p) == 4
        assert p.heterogeneity == pytest.approx(0.0)
        assert p.total_processors == 40

    def test_switch_modes(self):
        shared = homogeneous_platform(num_clusters=2, shared_switch=True)
        split = homogeneous_platform(num_clusters=2, shared_switch=False)
        a, b = shared.cluster_names()
        assert shared.topology.shares_switch(a, b)
        a, b = split.cluster_names()
        assert not split.topology.shares_switch(a, b)

    def test_invalid_count(self):
        with pytest.raises(InvalidPlatformError):
            homogeneous_platform(num_clusters=0)


class TestHeterogeneous:
    def test_explicit_sizes(self):
        p = heterogeneous_platform((4, 8), (2.0, 4.0))
        assert p.total_processors == 12
        assert p.heterogeneity == pytest.approx(1.0)

    def test_mismatched_lengths(self):
        with pytest.raises(InvalidPlatformError):
            heterogeneous_platform((4, 8), (2.0,))


class TestRandom:
    def test_deterministic_with_seed(self):
        a = random_platform(5, num_clusters=3)
        b = random_platform(5, num_clusters=3)
        assert a.describe() == b.describe()

    def test_bounds_respected(self):
        p = random_platform(1, num_clusters=5, min_processors=10, max_processors=20,
                            min_speed_gflops=2.0, max_speed_gflops=3.0)
        for c in p:
            assert 10 <= c.num_processors <= 20
            assert 2.0 <= c.speed_gflops <= 3.0

    def test_invalid_bounds(self):
        with pytest.raises(InvalidPlatformError):
            random_platform(0, min_processors=10, max_processors=5)
        with pytest.raises(InvalidPlatformError):
            random_platform(0, min_speed_gflops=5.0, max_speed_gflops=1.0)
        with pytest.raises(InvalidPlatformError):
            random_platform(0, num_clusters=0)

    def test_forced_switch_mode(self):
        p = random_platform(2, num_clusters=2, shared_switch=False)
        a, b = p.cluster_names()
        assert not p.topology.shares_switch(a, b)
