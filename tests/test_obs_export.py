"""Exporters: Chrome trace, Prometheus text, summary round-trips, merging."""

import json

from repro.obs.export import (
    aggregate_spans,
    chrome_trace,
    merge_metrics,
    prometheus_text,
    summary_spans,
    telemetry_summary,
    write_chrome_trace,
)
from repro.obs.meters import Histogram, MetricsRegistry
from repro.obs.trace import SpanRecord, Tracer


def make_spans():
    """Two nested spans with deterministic timings."""
    ticks = iter(range(100))
    tracer = Tracer(clock=lambda: float(next(ticks)))
    with tracer.span("outer", strategy="ES"):
        with tracer.span("inner"):
            pass
    return tracer.spans


def test_chrome_trace_events_are_relative_microseconds():
    doc = chrome_trace(make_spans(), process_name="test")
    assert doc["displayTimeUnit"] == "ms"
    meta, inner, outer = doc["traceEvents"]
    assert meta["ph"] == "M" and meta["args"] == {"name": "test"}
    assert inner["name"] == "inner" and inner["ph"] == "X"
    assert inner["ts"] == 1e6 and inner["dur"] == 1e6
    assert outer["ts"] == 0.0 and outer["dur"] == 3e6
    assert outer["args"] == {"strategy": "ES"}


def test_chrome_trace_of_no_spans_is_still_valid():
    doc = chrome_trace([])
    assert len(doc["traceEvents"]) == 1  # just the process metadata


def test_write_chrome_trace_is_loadable_json(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), make_spans())
    doc = json.loads(path.read_text())
    assert {e["name"] for e in doc["traceEvents"]} == {
        "process_name", "outer", "inner",
    }


def test_prometheus_text_renders_every_meter_kind():
    registry = MetricsRegistry()
    registry.counter("allocation.calls").inc(3)
    registry.gauge("stream.depth").set(2)
    h = registry.histogram("stream.admission_latency", edges=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(9.0)
    text = prometheus_text(registry.snapshot())
    assert "# TYPE repro_allocation_calls_total counter" in text
    assert "repro_allocation_calls_total 3.0" in text
    assert "repro_stream_depth 2.0" in text
    lines = text.splitlines()
    assert 'repro_stream_admission_latency_bucket{le="0.1"} 1' in lines
    assert 'repro_stream_admission_latency_bucket{le="1.0"} 2' in lines
    assert 'repro_stream_admission_latency_bucket{le="+Inf"} 3' in lines
    assert "repro_stream_admission_latency_count 3" in lines


def test_summary_round_trips_spans():
    spans = make_spans()
    registry = MetricsRegistry()
    registry.counter("c").inc()
    summary = telemetry_summary(
        spans, snapshot=registry.snapshot(), labels={"shard": "s0"}
    )
    assert summary["version"] == 1
    assert summary["labels"] == {"shard": "s0"}
    # survives a JSON round trip and rebuilds equal span records
    rebuilt = summary_spans(json.loads(json.dumps(summary)))
    assert rebuilt == spans


def test_merge_metrics_sums_counters_merges_histograms_maxes_gauges():
    def snapshot(counter, gauge, observation):
        registry = MetricsRegistry()
        registry.counter("calls").inc(counter)
        registry.gauge("depth").set(gauge)
        registry.histogram("lat", edges=(1.0, 2.0)).observe(observation)
        return registry.snapshot()

    merged = merge_metrics([snapshot(1, 5, 0.5), snapshot(2, 3, 1.5)])
    assert merged["counters"]["calls"] == 3.0
    assert merged["gauges"]["depth"]["max"] == 5.0
    histogram = Histogram.from_dict(merged["histograms"]["lat"])
    assert histogram.count == 2
    assert histogram.bucket_counts == [1, 1]


def test_merge_metrics_of_nothing_is_empty():
    merged = merge_metrics([])
    assert merged == {"counters": {}, "gauges": {}, "histograms": {}}


def test_aggregate_spans_per_name():
    spans = [
        SpanRecord(name="a", start=0.0, end=1.0),
        SpanRecord(name="a", start=1.0, end=4.0),
        SpanRecord(name="b", start=0.0, end=2.0),
    ]
    aggregates = aggregate_spans(spans)
    assert list(aggregates) == ["a", "b"]
    assert aggregates["a"] == {"count": 2, "total": 4.0, "mean": 2.0, "max": 3.0}
    assert aggregates["b"]["count"] == 1
