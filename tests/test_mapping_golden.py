"""Golden-schedule test: the optimized placement core is bit-identical.

The fast mapping core (incrementally sorted timelines, batched EFT
candidate evaluation, memoized communication estimates, heap-based ready
queue) is a pure performance refactor: for every pipeline that touches it
-- the eight constraint strategies, both mappers, packing on and off, the
online scheduler and the HEFT / M-HEFT / aggregation baselines -- it must
emit exactly the same :class:`~repro.mapping.schedule.Schedule` as the
pre-refactor code kept in :mod:`repro.mapping._reference`.

Every comparison below is **exact** (``==`` on floats, no tolerance): the
optimized arithmetic reproduces the scalar IEEE-754 operation order, so
any drift is a regression.
"""

import pytest

from repro.baselines.aggregation import AggregationScheduler
from repro.baselines.heft import HEFTScheduler
from repro.baselines.mheft import MHEFTScheduler
from repro.constraints.registry import paper_strategies
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.mapping._reference import reference_implementation
from repro.mapping.base import AllocatedPTG
from repro.mapping.global_order import GlobalOrderMapper
from repro.mapping.ready_list import ReadyListMapper
from repro.allocation.scrap import ScrapMaxAllocator
from repro.platform import grid5000
from repro.scheduler.concurrent import ConcurrentScheduler
from repro.scheduler.online import Arrival, OnlineConcurrentScheduler


def assert_identical_schedules(fast, reference):
    """Every placement field must match bit-for-bit."""
    assert len(fast) == len(reference)
    for entry in fast:
        ref = reference.entry(entry.ptg_name, entry.task_id)
        assert entry.cluster_name == ref.cluster_name, (entry, ref)
        assert entry.processors == ref.processors, (entry, ref)
        assert entry.start == ref.start, (entry, ref)
        assert entry.finish == ref.finish, (entry, ref)
        assert entry.reference_processors == ref.reference_processors, (entry, ref)


@pytest.fixture(scope="module")
def workload():
    return make_workload(WorkloadSpec(family="random", n_ptgs=4, seed=7, max_tasks=20))


@pytest.fixture(scope="module", params=["lille", "nancy"])
def platform(request):
    return grid5000.site(request.param)


def allocate(ptgs, platform, beta=1.0):
    allocator = ScrapMaxAllocator()
    return [
        AllocatedPTG(ptg, allocator.allocate(ptg, platform, beta=beta)) for ptg in ptgs
    ]


class TestGoldenStrategies:
    @pytest.mark.parametrize(
        "strategy", paper_strategies(), ids=lambda s: s.name
    )
    def test_concurrent_pipeline_bit_identical(self, workload, platform, strategy):
        fast = ConcurrentScheduler(strategy=strategy).schedule(workload, platform)
        with reference_implementation():
            ref = ConcurrentScheduler(strategy=strategy).schedule(workload, platform)
        assert_identical_schedules(fast.schedule, ref.schedule)
        assert fast.betas == ref.betas


class TestGoldenMappers:
    @pytest.mark.parametrize("packing", [True, False], ids=["packing", "no-packing"])
    def test_ready_list_bit_identical(self, workload, platform, packing):
        allocated = allocate(workload, platform)
        fast = ReadyListMapper(enable_packing=packing).map(allocated, platform)
        with reference_implementation():
            from repro.mapping._reference import ReferenceReadyListMapper

            ref = ReferenceReadyListMapper(enable_packing=packing).map(
                allocated, platform
            )
        assert_identical_schedules(fast, ref)

    @pytest.mark.parametrize("packing", [True, False], ids=["packing", "no-packing"])
    def test_global_order_bit_identical(self, workload, platform, packing):
        allocated = allocate(workload, platform)
        fast = GlobalOrderMapper(enable_packing=packing).map(allocated, platform)
        with reference_implementation():
            ref = GlobalOrderMapper(enable_packing=packing).map(allocated, platform)
        assert_identical_schedules(fast, ref)


class TestGoldenBaselines:
    def test_heft_bit_identical(self, workload, platform):
        fast = HEFTScheduler().schedule(workload, platform)
        with reference_implementation():
            ref = HEFTScheduler().schedule(workload, platform)
        assert_identical_schedules(fast, ref)

    def test_mheft_bit_identical(self, workload, platform):
        fast = MHEFTScheduler().schedule(workload, platform)
        with reference_implementation():
            ref = MHEFTScheduler().schedule(workload, platform)
        assert_identical_schedules(fast, ref)

    def test_aggregation_bit_identical(self, workload, platform):
        fast = AggregationScheduler().schedule(workload, platform)
        with reference_implementation():
            ref = AggregationScheduler().schedule(workload, platform)
        assert_identical_schedules(fast, ref)


class TestGoldenOnline:
    def test_online_bit_identical(self, workload, platform):
        arrivals = [
            Arrival(ptg, time=200.0 * i) for i, ptg in enumerate(workload)
        ]
        fast = OnlineConcurrentScheduler().schedule(arrivals, platform)
        with reference_implementation():
            ref = OnlineConcurrentScheduler().schedule(arrivals, platform)
        assert_identical_schedules(fast.schedule, ref.schedule)
        assert fast.betas == ref.betas
        assert fast.active_at_admission == ref.active_at_admission


class TestGoldenFamilies:
    """Cover the structured application families on top of random DAGs."""

    @pytest.mark.parametrize("family", ["fft", "strassen"])
    def test_family_bit_identical(self, platform, family):
        ptgs = make_workload(WorkloadSpec(family=family, n_ptgs=2, seed=3))
        strategy = paper_strategies()[0]
        fast = ConcurrentScheduler(strategy=strategy).schedule(ptgs, platform)
        with reference_implementation():
            ref = ConcurrentScheduler(strategy=strategy).schedule(ptgs, platform)
        assert_identical_schedules(fast.schedule, ref.schedule)
