"""Tests of the windowed / time-sliding streaming metrics."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mapping.schedule import Schedule, ScheduledTask
from repro.metrics.windows import (
    WindowedMetrics,
    rolling_utilisation,
    tenant_stall_times,
    window_edges,
    window_fairness,
    windowed_metrics,
)
from repro.platform.builder import single_cluster_platform
from repro.streaming.engine import Arrival, StreamSession

from tests.conftest import make_chain_ptg

PLATFORM = single_cluster_platform(num_processors=4, speed_gflops=2.0)


def entry(task, procs, start, finish):
    return ScheduledTask(
        ptg_name="app",
        task_id=task,
        cluster_name=PLATFORM.cluster_names()[0],
        processors=tuple(procs),
        start=start,
        finish=finish,
    )


class TestWindowEdges:
    def test_covers_horizon_with_equal_windows(self):
        edges = window_edges(10.0, 4.0)
        assert edges.tolist() == [0.0, 4.0, 8.0, 12.0]

    def test_exact_multiple_keeps_plain_grid(self):
        assert window_edges(8.0, 4.0).tolist() == [0.0, 4.0, 8.0]

    def test_zero_horizon_yields_one_window(self):
        assert window_edges(0.0, 5.0).tolist() == [0.0, 5.0]

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            window_edges(10.0, 0.0)


class TestRollingUtilisation:
    def test_exact_overlap_accounting(self):
        schedule = Schedule("p")
        # 2 processors busy over [0, 10): half the 4-processor platform
        schedule.add(entry(0, (0, 1), 0.0, 10.0))
        # 4 processors busy over [10, 15)
        schedule.add(entry(1, (0, 1, 2, 3), 10.0, 15.0))
        values = rolling_utilisation(schedule, PLATFORM, [0.0, 10.0, 20.0])
        assert values[0] == pytest.approx(0.5)
        assert values[1] == pytest.approx(0.5)  # 4 procs for half the window

    def test_reservation_spanning_windows_split_correctly(self):
        schedule = Schedule("p")
        schedule.add(entry(0, (0,), 5.0, 15.0))
        values = rolling_utilisation(schedule, PLATFORM, [0.0, 10.0, 20.0])
        assert values[0] == pytest.approx(5.0 / 40.0)
        assert values[1] == pytest.approx(5.0 / 40.0)

    def test_empty_schedule_is_idle(self):
        assert rolling_utilisation(Schedule("p"), PLATFORM, [0.0, 1.0]) == [0.0]

    def test_degenerate_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            rolling_utilisation(Schedule("p"), PLATFORM, [0.0])


class TestWindowFairness:
    def test_equal_proxies_are_perfectly_fair(self):
        arrivals = {"a": 0.0, "b": 0.0}
        starts = {"a": 5.0, "b": 5.0}
        completions = {"a": 10.0, "b": 10.0}
        fairness, mean_response = window_fairness(
            arrivals, starts, completions, [0.0, 20.0]
        )
        assert fairness == [pytest.approx(0.0)]
        assert mean_response == [pytest.approx(10.0)]

    def test_unequal_stalls_raise_window_unfairness(self):
        arrivals = {"a": 0.0, "b": 0.0}
        starts = {"a": 0.0, "b": 8.0}  # b stalls 80% of its response
        completions = {"a": 10.0, "b": 10.0}
        fairness, _ = window_fairness(arrivals, starts, completions, [0.0, 20.0])
        assert fairness[0] > 0.5

    def test_completions_attributed_to_their_window(self):
        arrivals = {"a": 0.0, "b": 0.0}
        starts = {"a": 0.0, "b": 0.0}
        completions = {"a": 5.0, "b": 15.0}
        fairness, mean_response = window_fairness(
            arrivals, starts, completions, [0.0, 10.0, 20.0]
        )
        assert mean_response == [pytest.approx(5.0), pytest.approx(15.0)]
        assert fairness == [pytest.approx(0.0), pytest.approx(0.0)]

    def test_empty_window_scores_zero(self):
        fairness, mean_response = window_fairness({}, {}, {}, [0.0, 1.0])
        assert fairness == [0.0] and mean_response == [0.0]


class TestTenantStalls:
    def test_stalls_summed_per_tenant(self):
        arrivals = {"a": 0.0, "b": 10.0, "c": 20.0}
        starts = {"a": 2.0, "b": 15.0, "c": 20.0}
        tenants = {"a": "t0", "b": "t1", "c": "t0"}
        stalls = tenant_stall_times(arrivals, starts, tenants)
        assert stalls == {"t0": pytest.approx(2.0), "t1": pytest.approx(5.0)}

    def test_unlabelled_applications_grouped_together(self):
        stalls = tenant_stall_times({"a": 0.0}, {"a": 3.0}, {})
        assert stalls == {"": pytest.approx(3.0)}


class TestWindowedMetrics:
    def _result(self):
        session = StreamSession(PLATFORM)
        session.feed(
            [
                Arrival(make_chain_ptg("a", n=3, flops=20e9), 0.0, tenant="t0"),
                Arrival(make_chain_ptg("b", n=3, flops=20e9), 5.0, tenant="t1"),
            ]
        )
        return session.result()

    def test_series_are_consistent(self):
        result = self._result()
        metrics = windowed_metrics(result, PLATFORM, window=10.0)
        assert metrics.n_windows == len(metrics.utilisation)
        assert metrics.n_windows == len(metrics.fairness)
        assert sum(metrics.arrivals) == 2
        assert sum(metrics.completions) == 2
        assert metrics.edges[-1] >= result.horizon() - 1e-9
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in metrics.utilisation)

    def test_default_window_splits_horizon_in_twenty(self):
        result = self._result()
        metrics = windowed_metrics(result, PLATFORM)
        assert metrics.window == pytest.approx(result.horizon() / 20.0)
        assert metrics.n_windows == 20

    def test_round_trips_through_json(self):
        import json

        metrics = windowed_metrics(self._result(), PLATFORM, window=7.0)
        clone = WindowedMetrics.from_dict(json.loads(json.dumps(metrics.to_dict())))
        assert clone == metrics
