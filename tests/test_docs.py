"""The documentation tree must stay valid (see ``tools/lint_docs.py``)."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_docs_tree_lints():
    """tools/lint_docs.py passes: required pages, valid links/anchors."""
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "lint_docs.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr


def test_readme_points_at_docs():
    """The README links to the documentation tree."""
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme
