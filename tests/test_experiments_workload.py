"""Tests for experiment workload generation."""

import pytest

from repro.dag.strassen import STRASSEN_TASK_COUNT
from repro.exceptions import ConfigurationError
from repro.experiments.workload import (
    APPLICATION_FAMILIES,
    PAPER_PTG_COUNTS,
    PAPER_WORKLOADS_PER_POINT,
    WorkloadSpec,
    make_workload,
    paper_workload_specs,
)


class TestWorkloadSpec:
    def test_defaults(self):
        spec = WorkloadSpec()
        assert spec.family == "random"
        assert spec.n_ptgs == 4

    def test_label(self):
        assert WorkloadSpec("fft", 6, 3).label() == "fft-x6-seed3"

    def test_invalid_family(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(family="montecarlo")

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(n_ptgs=0)


class TestMakeWorkload:
    @pytest.mark.parametrize("family", APPLICATION_FAMILIES)
    def test_families_produce_named_valid_graphs(self, family):
        ptgs = make_workload(WorkloadSpec(family=family, n_ptgs=3, seed=1))
        assert len(ptgs) == 3
        assert len({p.name for p in ptgs}) == 3
        for ptg in ptgs:
            ptg.validate()

    def test_deterministic_in_seed(self):
        a = make_workload(WorkloadSpec("random", 3, seed=9))
        b = make_workload(WorkloadSpec("random", 3, seed=9))
        assert [p.n_tasks for p in a] == [p.n_tasks for p in b]
        assert [t.flops for p, q in zip(a, b) for t in p.tasks()] == [
            t.flops for p, q in zip(a, b) for t in q.tasks()
        ]

    def test_different_seeds_differ(self):
        a = make_workload(WorkloadSpec("random", 3, seed=1))
        b = make_workload(WorkloadSpec("random", 3, seed=2))
        assert [t.flops for p in a for t in p.tasks()] != [
            t.flops for p in b for t in p.tasks()
        ]

    def test_max_tasks_cap(self):
        ptgs = make_workload(WorkloadSpec("random", 5, seed=0, max_tasks=10))
        assert all(len(p.real_tasks()) <= 10 for p in ptgs)

    def test_strassen_fixed_size(self):
        ptgs = make_workload(WorkloadSpec("strassen", 4, seed=0))
        assert all(p.n_tasks == STRASSEN_TASK_COUNT for p in ptgs)


class TestPaperWorkloadSpecs:
    def test_grid_size(self):
        specs = paper_workload_specs("random", ptg_counts=(2, 4), workloads_per_point=3)
        assert len(specs) == 6

    def test_paper_scale(self):
        specs = paper_workload_specs("random")
        assert len(specs) == len(PAPER_PTG_COUNTS) * PAPER_WORKLOADS_PER_POINT

    def test_unique_seeds(self):
        specs = paper_workload_specs("fft", ptg_counts=(2, 4, 6), workloads_per_point=5)
        seeds = [(s.n_ptgs, s.seed) for s in specs]
        assert len(set(seeds)) == len(seeds)

    def test_invalid_workloads_per_point(self):
        with pytest.raises(ConfigurationError):
            paper_workload_specs("random", workloads_per_point=0)
