"""Fault-injection tests of the admission daemon.

The centrepiece is kill-and-restart: a daemon abandoned mid-stream and
restored from its last checkpoint must finish with schedules
**bit-identical** to a run that was never interrupted, and every served
schedule must be validator-clean.  Around it: dropped, duplicated and
delayed requests (at-least-once delivery semantics), checkpoints that
carry not-yet-admitted pending arrivals, and restore error handling.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.campaigns.store import CampaignStore
from repro.exceptions import CampaignError
from repro.service.app import Request, ServiceApp
from repro.service.checkpoint import (
    SERVICE_CHANNEL,
    load_checkpoint,
    restore_app,
    write_checkpoint,
)

from service_harness import (
    FaultPlan,
    FaultyTransport,
    ManualClock,
    all_tenant_rows,
    make_arrivals,
    make_service_spec,
    replay_rows,
    submit_request,
)


def test_kill_and_restart_resumes_bit_identically(tmp_path):
    """A daemon killed mid-stream resumes exactly where it left off."""
    spec = make_service_spec()
    arrivals = make_arrivals(8)
    store = CampaignStore(tmp_path / "store")

    # the uninterrupted oracle: all arrivals through one daemon
    async def uninterrupted():
        app = ServiceApp(spec)
        transport = FaultyTransport(app)
        for tenant, at, ptg in arrivals:
            response = await transport.submit(tenant, at, ptg)
            assert response.status == 202, response.body
        rows = await all_tenant_rows(app)
        await app.stop()
        return rows

    oracle = asyncio.run(uninterrupted())

    # first daemon: five arrivals acknowledged, checkpoint, then CRASH --
    # no graceful shutdown, the object is simply abandoned
    async def first_life():
        app = ServiceApp(spec, store=store)
        transport = FaultyTransport(app)
        for tenant, at, ptg in arrivals[:5]:
            response = await transport.submit(tenant, at, ptg)
            assert response.status == 202, response.body
        response = await app.handle(Request("POST", "/checkpoint"))
        assert response.status == 200, response.body
        await app.stop()  # simulated kill: workers die, no final checkpoint

    asyncio.run(first_life())

    # second daemon: restore, then the client re-submits from its last
    # acknowledged arrival onwards
    async def second_life():
        app = restore_app(store)
        await app.start()
        transport = FaultyTransport(app)
        for tenant, at, ptg in arrivals[5:]:
            response = await transport.submit(tenant, at, ptg)
            assert response.status == 202, response.body
        rows = await all_tenant_rows(app)
        await app.stop()
        return rows

    restored = asyncio.run(second_life())
    assert restored == oracle  # bit-identical, and validator-clean (200s)
    assert oracle == replay_rows(spec, arrivals)


def test_restore_requeues_pending_arrivals(tmp_path):
    """Arrivals checkpointed as *pending* are admitted after the restart."""
    spec = make_service_spec()
    arrivals = make_arrivals(6, tenants=("solo",))
    store = CampaignStore(tmp_path / "store")

    async def first_life():
        app = ServiceApp(spec, store=store)
        # submit without ever yielding to the event loop: the workers
        # exist but never ran, so everything is still pending
        for tenant, at, ptg in arrivals:
            response = await app.handle(submit_request(tenant, at, ptg))
            assert response.status == 202
        assert app.tenants["solo"].depth == 6
        # crash-style checkpoint: direct write, no quiesce
        write_checkpoint(app, store)
        await app.stop()

    asyncio.run(first_life())
    record = load_checkpoint(store)
    assert len(record["tenants"]["solo"]["pending"]) == 6
    assert record["tenants"]["solo"]["admitted"] == []

    async def second_life():
        app = restore_app(store)
        await app.start()
        await app.quiesce()
        assert app.tenants["solo"].session.admitted == 6
        rows = await all_tenant_rows(app)
        await app.stop()
        return rows

    assert asyncio.run(second_life()) == replay_rows(spec, arrivals)


def test_duplicate_requests_are_idempotent():
    """At-least-once delivery: replayed submissions answer 409, state unchanged."""
    spec = make_service_spec()
    arrivals = make_arrivals(6)

    async def run(plan):
        app = ServiceApp(spec)
        transport = FaultyTransport(app, plan)
        for tenant, at, ptg in arrivals:
            response = await transport.submit(tenant, at, ptg)
            assert response.status == 202, response.body
        rows = await all_tenant_rows(app)
        await app.stop()
        return rows

    clean = asyncio.run(run(FaultPlan()))
    noisy = asyncio.run(run(FaultPlan(duplicate=frozenset({0, 3, 5}))))
    assert noisy == clean


def test_dropped_requests_recover_through_retry():
    """Lost requests retried by the client leave the outcome unchanged."""
    spec = make_service_spec()
    arrivals = make_arrivals(6)

    async def run(plan):
        app = ServiceApp(spec, clock=ManualClock())
        transport = FaultyTransport(app, plan)
        for tenant, at, ptg in arrivals:
            response = await transport.submit_reliably(tenant, at, ptg)
            assert response.status == 202, response.body
        rows = await all_tenant_rows(app)
        await app.stop()
        return transport, rows

    _, clean = asyncio.run(run(FaultPlan()))
    transport, noisy = asyncio.run(run(FaultPlan(drop=frozenset({1, 4}))))
    assert noisy == clean
    assert transport.dropped == [1, 4]


def test_delayed_requests_trip_the_slo_counter():
    """A transport stall longer than the SLO is counted, not dropped."""
    clock = ManualClock()
    spec = make_service_spec(slo=0.5)
    arrivals = make_arrivals(4, tenants=("solo",))

    async def run():
        app = ServiceApp(spec, clock=clock)
        # index 2 reaches the daemon 2s late: everything queued before
        # the stall is admitted >= 2s after it was enqueued
        plan = FaultPlan(delay={2: 2.0})
        transport = FaultyTransport(app, plan, clock=clock)
        for tenant, at, ptg in arrivals:
            await transport.submit(tenant, at, ptg)
        await app.quiesce()
        violations = app.registry.counter("service.slo_violations").value
        late = app.tenants["solo"].slo_violations
        rows = await all_tenant_rows(app)
        await app.stop()
        return violations, late, rows

    violations, late, rows = asyncio.run(run())
    # the two submissions enqueued before the stall were admitted late
    assert violations == 2
    assert late == 2
    assert rows == replay_rows(spec, arrivals)  # faults never change schedules


def test_restore_from_empty_store_raises(tmp_path):
    store = CampaignStore(tmp_path / "store")
    with pytest.raises(CampaignError, match="no service checkpoint"):
        asyncio.run(_restore(store))


async def _restore(store, key=None):
    return restore_app(store, key=key)


def test_restore_with_wrong_key_raises(tmp_path):
    spec = make_service_spec()
    store = CampaignStore(tmp_path / "store")

    async def checkpoint_once():
        app = ServiceApp(spec, store=store)
        write_checkpoint(app, store)
        await app.stop()

    asyncio.run(checkpoint_once())
    with pytest.raises(CampaignError, match="no service checkpoint under key"):
        asyncio.run(_restore(store, key="not-a-key"))


def test_restore_rejects_unknown_checkpoint_version(tmp_path):
    spec = make_service_spec()
    store = CampaignStore(tmp_path / "store")
    store.append_payload(
        SERVICE_CHANNEL,
        spec.content_hash(),
        {"checkpoint_version": 99, "spec": spec.to_dict(), "tenants": {}},
    )
    with pytest.raises(CampaignError, match="version 99"):
        load_checkpoint(store)


def test_checkpoint_carries_metrics_forward(tmp_path):
    """Restored daemons keep accumulating into the checkpointed meters."""
    spec = make_service_spec()
    arrivals = make_arrivals(6, tenants=("solo",))
    store = CampaignStore(tmp_path / "store")

    async def first_life():
        app = ServiceApp(spec, store=store)
        transport = FaultyTransport(app)
        for tenant, at, ptg in arrivals[:3]:
            await transport.submit(tenant, at, ptg)
        await app.handle(Request("POST", "/checkpoint"))
        await app.stop()

    asyncio.run(first_life())

    async def second_life():
        app = restore_app(store)
        await app.start()
        assert app.registry.counter("service.admissions").value == 3
        transport = FaultyTransport(app)
        for tenant, at, ptg in arrivals[3:]:
            await transport.submit(tenant, at, ptg)
        await app.quiesce()
        metrics = await app.handle(Request("GET", "/metrics"))
        await app.stop()
        return metrics.body

    body = asyncio.run(second_life())
    histogram = body["metrics"]["histograms"]["service.admission_latency"]
    assert body["metrics"]["counters"]["service.admissions"] == 6
    assert histogram["count"] == 6
    assert body["p99_admission_latency"] is not None
