"""Telemetry on vs off: schedules and stats must stay bit-identical.

Telemetry is strictly observational: this module runs the same pipeline
with telemetry disabled and enabled and asserts the produced schedules,
experiment outcomes, streaming outcomes and allocation
:class:`~repro.allocation.iterative.IterationStats` match exactly --
not approximately.
"""

import dataclasses

import numpy as np
import pytest

from repro import (
    ConcurrentScheduler,
    RandomPTGConfig,
    Scenario,
    ScrapMaxAllocator,
    TelemetrySpec,
    generate_random_ptg,
    grid5000,
    obs,
    run_scenario,
    strategy,
)
from repro.streaming.run import run_stream_scenario
from repro.streaming.spec import ArrivalSpec
from repro.scenarios.spec import ScenarioSpec


@pytest.fixture(autouse=True)
def telemetry_is_off_before_and_after():
    assert not obs.enabled()
    yield
    assert not obs.enabled()


def make_ptgs(n=3, seed=11):
    rng = np.random.default_rng(seed)
    return [
        generate_random_ptg(rng, RandomPTGConfig(n_tasks=15), name=f"app-{i}")
        for i in range(n)
    ]


def schedule_rows(schedule):
    """Exact row form of a schedule for bit-identical comparison."""
    return [
        (e.ptg_name, e.task_id, e.cluster_name, e.processors, e.start, e.finish)
        for e in schedule
    ]


def test_scheduler_output_is_bit_identical_with_telemetry_on():
    platform = grid5000.rennes()
    scheduler = ConcurrentScheduler(strategy("ES"))

    baseline = scheduler.schedule(make_ptgs(), platform)
    with obs.capture() as session:
        traced = scheduler.schedule(make_ptgs(), platform)

    assert traced.betas == baseline.betas
    assert schedule_rows(traced.schedule) == schedule_rows(baseline.schedule)
    assert traced.makespans == baseline.makespans
    # and the capture actually observed the run
    assert any(s.name == "scheduler.allocate" for s in session.spans)
    assert session.registry.counters["allocation.calls"].value > 0


def test_allocation_stats_are_bit_identical_with_telemetry_on():
    platform = grid5000.rennes()
    ptg = make_ptgs(n=1)[0]
    allocator = ScrapMaxAllocator()

    baseline_allocation = allocator.allocate(ptg, platform, beta=0.5)
    baseline_stats = allocator.last_stats
    with obs.capture():
        traced_allocation = allocator.allocate(ptg, platform, beta=0.5)
        traced_stats = allocator.last_stats

    assert dataclasses.asdict(traced_stats) == dataclasses.asdict(baseline_stats)
    assert traced_allocation.as_dict() == baseline_allocation.as_dict()


def test_scenario_results_are_bit_identical_with_telemetry_on():
    spec = (
        Scenario.on("rennes")
        .workload(family="fft", n_ptgs=2, seed=3)
        .pipeline(strategy=["ES", "S"])
        .build()
    )
    baseline = run_scenario(spec)
    with obs.capture():
        traced = run_scenario(spec)

    for name, outcome in baseline.experiment.outcomes.items():
        other = traced.experiment.outcomes[name]
        assert other.betas == outcome.betas
        assert other.makespans == outcome.makespans
        assert other.slowdowns == outcome.slowdowns
        assert other.unfairness == outcome.unfairness
        assert other.batch_makespan == outcome.batch_makespan


def test_stream_outcomes_are_bit_identical_with_telemetry_on():
    arrivals = ArrivalSpec(
        process="poisson", rate=0.2, n_arrivals=6, seed=5,
        family="random", max_tasks=10,
    )
    spec = ScenarioSpec(platform="rennes", strategies=["ES"], arrivals=arrivals)
    baseline = run_stream_scenario(spec)
    with obs.capture():
        traced = run_stream_scenario(spec)

    assert baseline.telemetry is None and traced.telemetry is None
    assert traced.outcomes.keys() == baseline.outcomes.keys()
    for name, outcome in baseline.outcomes.items():
        assert traced.outcomes[name].to_dict() == outcome.to_dict()


def test_spec_telemetry_session_is_scoped_to_the_run():
    spec = (
        Scenario.on("rennes")
        .workload(family="fft", n_ptgs=2, seed=3)
        .pipeline(strategy=["ES"])
        .build()
    )
    traced_spec = dataclasses.replace(spec, telemetry=TelemetrySpec())
    result = run_scenario(traced_spec)
    assert not obs.enabled()
    assert result.telemetry is not None
    assert result.telemetry["metrics"]["counters"]["allocation.calls"] > 0
    # the plain spec captures nothing and its hash is untouched
    assert run_scenario(spec).telemetry is None
    assert spec.content_hash() != traced_spec.content_hash()


def test_telemetry_key_extends_hash_only_when_set():
    from repro.scenarios.spec import PipelineSpec, scenario_hash_payload

    pipeline = PipelineSpec()
    base = scenario_hash_payload(
        family="fft", n_ptgs=2, seed=3, max_tasks=None,
        platform_fp="fp", strategy_names=("ES",), pipeline=pipeline,
    )
    assert "telemetry" not in base
    extended = scenario_hash_payload(
        family="fft", n_ptgs=2, seed=3, max_tasks=None,
        platform_fp="fp", strategy_names=("ES",), pipeline=pipeline,
        telemetry=TelemetrySpec(),
    )
    assert "telemetry" in extended
    plain = dict(extended)
    del plain["telemetry"]
    assert plain == base


def test_telemetry_spec_round_trips_and_rejects_all_off():
    from repro.exceptions import ConfigurationError

    spec = TelemetrySpec(spans=True, metrics=False, profile=True)
    assert TelemetrySpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(ConfigurationError):
        TelemetrySpec(spans=False, metrics=False, profile=False)
    # the {"telemetry": true} JSON shorthand maps to the default spec
    scenario = ScenarioSpec.from_dict({"telemetry": True})
    assert scenario.telemetry == TelemetrySpec()
    assert ScenarioSpec.from_dict(scenario.to_dict()) == scenario
