"""Property-based tests on the scheduling invariants.

For arbitrary workloads and constraints the pipeline must always produce
(1) complete schedules, (2) no processor oversubscription, (3) respected
precedence constraints, and (4) SCRAP-MAX allocations that never exceed
the per-level power budget (when the one-processor-per-task baseline
fits).

The validator layer broadens this: random PTGs x all eight constraint
strategies x both mappers x packing on/off must always produce schedules
the :mod:`repro.validate` invariant checker accepts, and so must random
online arrival streams.  Cases that once shrank to failures are checked
in as regression fixtures (``tests/fixtures/property_regressions.json``)
and replayed both as plain parametrized tests and as hypothesis
``@example`` seeds.

CI runs this module under a derandomized profile
(``HYPOTHESIS_PROFILE=ci`` plus ``--hypothesis-seed=0``, see
``tests/conftest.py``), so the examples drawn are stable across runs.
"""

import json
from pathlib import Path

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.allocation.scrap import ScrapMaxAllocator
from repro.constraints.registry import STRATEGY_NAMES
from repro.constraints.strategies import (
    EqualShareStrategy,
    WeightedProportionalShareStrategy,
)
from repro.dag.generator import RandomPTGConfig, generate_random_ptg
from repro.mapping.base import AllocatedPTG
from repro.mapping.ready_list import ReadyListMapper
from repro.platform.builder import heterogeneous_platform
from repro.scenarios.registry import MAPPERS, STRATEGIES
from repro.scheduler.concurrent import ConcurrentScheduler
from repro.scheduler.online import OnlineConcurrentScheduler
from repro.simulate.executor import ScheduleExecutor
from repro.streaming.spec import ArrivalSpec, generate_arrivals
from repro.validate import validate_result, validate_schedule

PLATFORM = heterogeneous_platform((6, 10), (2.0, 4.0), name="prop-platform")

REGRESSION_FIXTURES = json.loads(
    (Path(__file__).parent / "fixtures" / "property_regressions.json").read_text()
)


def build_workload(seed, n_apps, n_tasks):
    return [
        generate_random_ptg(
            seed + i, RandomPTGConfig(n_tasks=n_tasks), name=f"prop-{seed}-{i}"
        )
        for i in range(n_apps)
    ]


def run_pipeline_case(seed, n_apps, n_tasks, strategy, mapper, packing):
    """Schedule one drawn case and return (workload, result)."""
    workload = build_workload(seed, n_apps, n_tasks)
    scheduler = ConcurrentScheduler(
        STRATEGIES.create(strategy),
        mapper=MAPPERS.create(mapper, enable_packing=packing),
    )
    return workload, scheduler.schedule(workload, PLATFORM)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_apps=st.integers(min_value=1, max_value=4),
    n_tasks=st.integers(min_value=2, max_value=12),
    beta=st.floats(min_value=0.1, max_value=1.0),
)
def test_scrap_max_allocation_invariants(seed, n_apps, n_tasks, beta):
    workload = build_workload(seed, n_apps, n_tasks)
    allocator = ScrapMaxAllocator()
    limit = beta * PLATFORM.total_power_gflops + 1e-9
    for ptg in workload:
        allocation = allocator.allocate(ptg, PLATFORM, beta=beta)
        cap = allocation.reference.max_allocation(PLATFORM)
        for task in ptg.tasks():
            procs = allocation.processors(task.task_id)
            assert 1 <= procs <= cap
            if task.is_synthetic:
                assert procs == 1
        initial_fits = all(
            len(tids) * allocation.reference.speed_gflops <= limit
            for tids in ptg.tasks_by_level().values()
        )
        if initial_fits:
            assert all(power <= limit for power in allocation.level_powers().values())


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_apps=st.integers(min_value=1, max_value=3),
    n_tasks=st.integers(min_value=2, max_value=10),
    mu=st.floats(min_value=0.0, max_value=1.0),
)
def test_concurrent_schedule_invariants(seed, n_apps, n_tasks, mu):
    workload = build_workload(seed, n_apps, n_tasks)
    scheduler = ConcurrentScheduler(WeightedProportionalShareStrategy("work", mu=mu))
    result = scheduler.schedule(workload, PLATFORM)
    # betas are valid fractions
    assert all(0 < b <= 1 for b in result.betas.values())
    # every task of every application is placed exactly once
    assert len(result.schedule) == sum(p.n_tasks for p in workload)
    # no processor oversubscription and no precedence violation
    result.schedule.validate_no_overlap()
    result.schedule.validate_precedences(workload)
    # per-application makespans are positive and bounded by the batch makespan
    for name, makespan in result.makespans.items():
        assert 0 < makespan <= result.global_makespan + 1e-9


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_apps=st.integers(min_value=1, max_value=3),
    n_tasks=st.integers(min_value=2, max_value=8),
)
def test_simulated_execution_invariants(seed, n_apps, n_tasks):
    workload = build_workload(seed, n_apps, n_tasks)
    scheduler = ConcurrentScheduler(EqualShareStrategy())
    planned = scheduler.schedule(workload, PLATFORM)
    report = ScheduleExecutor(PLATFORM).execute(workload, planned.schedule)
    records = {(r.ptg_name, r.task_id): r for r in report.records}
    # every task executed exactly once
    assert len(records) == sum(p.n_tasks for p in workload)
    for ptg in workload:
        for src, dst, _ in ptg.edges():
            # measured precedences hold
            assert records[(ptg.name, dst)].start >= records[(ptg.name, src)].finish - 1e-9
    # the simulation never finishes a task before the mapper thought possible
    for key, record in records.items():
        assert record.finish >= record.planned_start - 1e-9
    # measured makespans are positive
    assert all(v > 0 for v in report.makespans().values())


@settings(max_examples=24, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_apps=st.integers(min_value=1, max_value=3),
    n_tasks=st.integers(min_value=2, max_value=12),
    strategy=st.sampled_from(STRATEGY_NAMES),
    mapper=st.sampled_from(["ready-list", "global-order"]),
    packing=st.booleans(),
)
@example(seed=0, n_apps=1, n_tasks=2, strategy="S", mapper="ready-list", packing=True)
@example(
    seed=1187, n_apps=3, n_tasks=9, strategy="PS-width", mapper="ready-list",
    packing=False,
)
@example(
    seed=4242, n_apps=2, n_tasks=12, strategy="WPS-cp", mapper="global-order",
    packing=True,
)
def test_every_pipeline_is_validator_clean(
    seed, n_apps, n_tasks, strategy, mapper, packing
):
    """Any strategy x mapper x packing combination satisfies every invariant."""
    workload, result = run_pipeline_case(
        seed, n_apps, n_tasks, strategy, mapper, packing
    )
    report = validate_schedule(result.schedule, workload, PLATFORM)
    assert report.ok, [str(v) for v in report.violations]


@pytest.mark.parametrize(
    "case",
    REGRESSION_FIXTURES,
    ids=lambda c: f"{c['strategy']}-{c['mapper']}-seed{c['seed']}"
                  f"{'' if c['packing'] else '-nopack'}",
)
def test_regression_fixtures_are_validator_clean(case):
    """Replay of the checked-in shrunk cases, independent of hypothesis."""
    workload, result = run_pipeline_case(
        case["seed"], case["n_apps"], case["n_tasks"],
        case["strategy"], case["mapper"], case["packing"],
    )
    report = validate_schedule(result.schedule, workload, PLATFORM)
    assert report.ok, [str(v) for v in report.violations]


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_arrivals=st.integers(min_value=1, max_value=6),
    rate=st.floats(min_value=0.005, max_value=0.5),
    process=st.sampled_from(["poisson", "mmpp"]),
)
@example(seed=0, n_arrivals=1, rate=0.005, process="poisson")
def test_online_streams_are_validator_clean(seed, n_arrivals, rate, process):
    """Random arrival streams keep every invariant, release times included."""
    spec = ArrivalSpec(
        process=process, rate=rate, n_arrivals=n_arrivals, seed=seed,
        family="random", max_tasks=8,
    )
    arrivals = generate_arrivals(spec)
    result = OnlineConcurrentScheduler().schedule(arrivals, PLATFORM)
    report = validate_result(result)
    assert report.ok, [str(v) for v in report.violations]
    assert "release" in report.checks


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_tasks=st.integers(min_value=2, max_value=10),
)
def test_ready_list_mapping_is_deterministic(seed, n_tasks):
    ptg = generate_random_ptg(seed, RandomPTGConfig(n_tasks=n_tasks), name="det")
    allocation = ScrapMaxAllocator().allocate(ptg, PLATFORM, beta=0.5)
    mapper = ReadyListMapper()
    s1 = mapper.map([AllocatedPTG(ptg, allocation)], PLATFORM)
    s2 = mapper.map([AllocatedPTG(ptg, allocation)], PLATFORM)
    for entry in s1:
        other = s2.entry(entry.ptg_name, entry.task_id)
        assert other.start == entry.start
        assert other.finish == entry.finish
        assert other.cluster_name == entry.cluster_name
        assert other.processors == entry.processors
