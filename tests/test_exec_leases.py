"""Unit tests for the work-stealing lease board (repro.exec.leases)."""

import json

import pytest

from repro.exec.leases import LEASES_DIRNAME, Lease, LeaseBoard


@pytest.fixture()
def board(tmp_path):
    return LeaseBoard(tmp_path / LEASES_DIRNAME)


class TestAcquire:
    def test_first_acquire_wins(self, board):
        lease = board.acquire("shard-a", "w0")
        assert lease is not None
        assert lease.owner == "w0"
        assert lease.attempt == 1
        assert lease.key == "shard-a"

    def test_second_acquire_loses(self, board):
        assert board.acquire("shard-a", "w0") is not None
        assert board.acquire("shard-a", "w1") is None

    def test_distinct_keys_are_independent(self, board):
        assert board.acquire("shard-a", "w0") is not None
        assert board.acquire("shard-b", "w1") is not None

    def test_lease_is_durable(self, board):
        board.acquire("shard-a", "w0")
        loaded = board.load("shard-a")
        assert loaded is not None
        assert loaded.owner == "w0"
        assert loaded.attempt == 1

    def test_acquire_creates_the_directory(self, tmp_path):
        board = LeaseBoard(tmp_path / "deep" / "leases")
        assert board.acquire("k", "w0") is not None


class TestLoad:
    def test_missing_lease_loads_none(self, board):
        assert board.load("nope") is None

    def test_torn_lease_file_loads_none(self, board):
        board.acquire("shard-a", "w0")
        path = board.path("shard-a")
        path.write_text("{ torn", encoding="utf-8")
        assert board.load("shard-a") is None


class TestHeartbeat:
    def test_beat_advances_the_heartbeat(self, board):
        lease = board.acquire("shard-a", "w0")
        board.beat(lease, now=lease.heartbeat + 10.0)
        assert board.load("shard-a").heartbeat == pytest.approx(
            lease.heartbeat + 10.0
        )

    def test_staleness_follows_the_heartbeat_age(self, board):
        lease = board.acquire("shard-a", "w0")
        assert not lease.is_stale(timeout=5.0, now=lease.heartbeat + 4.0)
        assert lease.is_stale(timeout=5.0, now=lease.heartbeat + 6.0)


class TestSteal:
    def test_fresh_lease_is_not_stealable(self, board):
        board.acquire("shard-a", "w0")
        assert board.steal("shard-a", "w1", timeout=60.0) is None

    def test_stale_lease_is_stolen_with_attempt_bump(self, board):
        lease = board.acquire("shard-a", "w0")
        stolen = board.steal(
            "shard-a", "w1", timeout=1.0, now=lease.heartbeat + 5.0
        )
        assert stolen is not None
        assert stolen.owner == "w1"
        assert stolen.attempt == 2

    def test_missing_lease_is_not_stealable(self, board):
        assert board.steal("shard-a", "w1", timeout=0.0) is None

    def test_each_attempt_is_stolen_at_most_once(self, board):
        lease = board.acquire("shard-a", "w0")
        later = lease.heartbeat + 100.0
        assert board.steal("shard-a", "w1", timeout=1.0, now=later) is not None
        # same attempt: the sentinel blocks a second thief
        assert board.steal("shard-a", "w2", timeout=1000.0, now=later) is None

    def test_restolen_after_the_thief_goes_stale_too(self, board):
        lease = board.acquire("shard-a", "w0")
        t1 = lease.heartbeat + 10.0
        stolen = board.steal("shard-a", "w1", timeout=1.0, now=t1)
        restolen = board.steal("shard-a", "w2", timeout=1.0, now=t1 + 10.0)
        assert restolen is not None
        assert restolen.owner == "w2"
        assert restolen.attempt == 3
        assert stolen.attempt == 2


class TestRelease:
    def test_release_frees_the_key(self, board):
        board.acquire("shard-a", "w0")
        board.release("shard-a")
        assert board.load("shard-a") is None
        assert board.acquire("shard-a", "w1") is not None

    def test_release_removes_steal_sentinels(self, board):
        lease = board.acquire("shard-a", "w0")
        board.steal("shard-a", "w1", timeout=1.0, now=lease.heartbeat + 10.0)
        board.release("shard-a")
        leftovers = [p.name for p in board.root.iterdir()]
        assert leftovers == []

    def test_release_of_unknown_key_is_a_no_op(self, board):
        board.release("never-leased")


class TestListing:
    def test_active_lists_held_leases(self, board):
        board.acquire("shard-a", "w0")
        board.acquire("shard-b", "w1")
        assert {lease.key for lease in board.active()} == {"shard-a", "shard-b"}

    def test_stale_lists_only_expired_leases(self, board):
        a = board.acquire("shard-a", "w0")
        board.acquire("shard-b", "w1")
        board.beat(a, now=a.heartbeat - 100.0)  # age shard-a artificially
        stale = board.stale(timeout=50.0)
        assert [lease.key for lease in stale] == ["shard-a"]


class TestLeaseSerialisation:
    def test_round_trip(self, board):
        lease = Lease(key="k", owner="w0", attempt=3, acquired=1.0, heartbeat=2.0)
        assert Lease.from_dict(lease.to_dict()) == lease

    def test_lease_file_is_json(self, board):
        board.acquire("shard-a", "w0")
        payload = json.loads(
            board.path("shard-a").read_text(encoding="utf-8")
        )
        assert payload["owner"] == "w0"
        assert payload["attempt"] == 1

    def test_age(self):
        lease = Lease(key="k", owner="w", attempt=1, acquired=0.0, heartbeat=5.0)
        assert lease.age(now=12.5) == pytest.approx(7.5)
