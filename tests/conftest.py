"""Shared fixtures for the test suite.

Fixtures provide small, deterministic platforms and graphs so the unit
tests stay fast; the integration tests build their own larger scenarios.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

try:  # the property suite is optional outside CI
    from hypothesis import settings as _hypothesis_settings

    # Fixed profile for the CI `properties` job: derandomized draws (plus
    # --hypothesis-seed=0 on the command line) make the examples stable
    # across runs, so a red property job is always reproducible locally
    # with HYPOTHESIS_PROFILE=ci.
    _hypothesis_settings.register_profile("ci", derandomize=True, deadline=None)
    if os.environ.get("HYPOTHESIS_PROFILE"):
        _hypothesis_settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])
except ImportError:  # pragma: no cover - hypothesis is installed in CI
    pass

from repro.dag.cost_models import ComplexityClass
from repro.dag.generator import RandomPTGConfig, generate_random_ptg
from repro.dag.graph import PTG
from repro.dag.task import Task
from repro.platform.builder import (
    heterogeneous_platform,
    homogeneous_platform,
    single_cluster_platform,
)
from repro.platform import grid5000


@pytest.fixture
def rng():
    """A deterministic NumPy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def single_cluster():
    """One homogeneous cluster of 16 processors at 4 GFlop/s."""
    return single_cluster_platform(num_processors=16, speed_gflops=4.0)


@pytest.fixture
def small_platform():
    """A small heterogeneous platform: 8 + 12 processors, shared switch."""
    return heterogeneous_platform(
        cluster_sizes=(8, 12), cluster_speeds=(2.0, 4.0), shared_switch=True, name="small"
    )


@pytest.fixture
def split_switch_platform():
    """The same sizes/speeds as ``small_platform`` but one switch per cluster."""
    return heterogeneous_platform(
        cluster_sizes=(8, 12), cluster_speeds=(2.0, 4.0), shared_switch=False, name="split"
    )


@pytest.fixture
def medium_platform():
    """Three clusters, 40 processors total, moderate heterogeneity."""
    return heterogeneous_platform(
        cluster_sizes=(16, 12, 12),
        cluster_speeds=(3.0, 4.0, 5.0),
        shared_switch=True,
        name="medium",
    )


@pytest.fixture
def lille():
    """The Lille Grid'5000 subset (the smallest of the four sites)."""
    return grid5000.lille()


def make_chain_ptg(name="chain", n=4, flops=8e9, alpha=0.1, data=4e6):
    """A linear chain of *n* identical tasks."""
    graph = PTG(name)
    for i in range(n):
        graph.add_task(Task(i, flops=flops, alpha=alpha, data_elements=data))
    for i in range(n - 1):
        graph.add_edge(i, i + 1, 8.0 * data)
    graph.validate()
    return graph


def make_diamond_ptg(name="diamond", flops=8e9, alpha=0.1, data=4e6):
    """Entry -> two parallel tasks -> exit (the smallest non-trivial PTG)."""
    graph = PTG(name)
    for i in range(4):
        graph.add_task(Task(i, flops=flops, alpha=alpha, data_elements=data))
    graph.add_edge(0, 1, 8.0 * data)
    graph.add_edge(0, 2, 8.0 * data)
    graph.add_edge(1, 3, 8.0 * data)
    graph.add_edge(2, 3, 8.0 * data)
    graph.validate()
    return graph


def make_fork_join_ptg(name="forkjoin", width=5, flops=8e9, alpha=0.1, data=4e6):
    """Entry -> *width* parallel tasks -> exit."""
    graph = PTG(name)
    graph.add_task(Task(0, flops=flops, alpha=alpha, data_elements=data))
    for i in range(1, width + 1):
        graph.add_task(Task(i, flops=flops, alpha=alpha, data_elements=data))
        graph.add_edge(0, i, 8.0 * data)
    exit_id = width + 1
    graph.add_task(Task(exit_id, flops=flops, alpha=alpha, data_elements=data))
    for i in range(1, width + 1):
        graph.add_edge(i, exit_id, 8.0 * data)
    graph.validate()
    return graph


@pytest.fixture
def chain_ptg():
    """A 4-task chain."""
    return make_chain_ptg()


@pytest.fixture
def diamond_ptg():
    """A 4-task diamond."""
    return make_diamond_ptg()


@pytest.fixture
def fork_join_ptg():
    """A 7-task fork-join graph of width 5."""
    return make_fork_join_ptg()


@pytest.fixture
def small_random_ptg(rng):
    """A small random PTG (10 computational tasks)."""
    return generate_random_ptg(
        rng,
        RandomPTGConfig(n_tasks=10, complexity=ComplexityClass.MIXED),
        name="small-random",
    )


@pytest.fixture
def random_workload(rng):
    """Three random PTGs with distinct names (a small concurrent workload)."""
    return [
        generate_random_ptg(rng, RandomPTGConfig(n_tasks=8), name=f"wl-{i}")
        for i in range(3)
    ]
