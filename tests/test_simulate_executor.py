"""Tests for the schedule executor (the SimGrid-substitute measurement layer)."""

import pytest

from repro.allocation.scrap import ScrapMaxAllocator
from repro.exceptions import SimulationError
from repro.mapping.base import AllocatedPTG
from repro.mapping.ready_list import ReadyListMapper
from repro.mapping.schedule import Schedule, ScheduledTask
from repro.simulate.executor import ScheduleExecutor

from tests.conftest import make_chain_ptg, make_diamond_ptg


def plan(ptgs, platform, beta=1.0):
    allocated = [
        AllocatedPTG(p, ScrapMaxAllocator().allocate(p, platform, beta=beta))
        for p in ptgs
    ]
    return ReadyListMapper().map(allocated, platform)


class TestExecution:
    def test_every_task_gets_a_record(self, medium_platform, random_workload):
        schedule = plan(random_workload, medium_platform, beta=1 / 3)
        report = ScheduleExecutor(medium_platform).execute(random_workload, schedule)
        assert len(report.records) == sum(p.n_tasks for p in random_workload)

    def test_precedences_respected_in_measured_times(self, medium_platform, random_workload):
        schedule = plan(random_workload, medium_platform, beta=1 / 3)
        report = ScheduleExecutor(medium_platform).execute(random_workload, schedule)
        by_key = {(r.ptg_name, r.task_id): r for r in report.records}
        for ptg in random_workload:
            for src, dst, _ in ptg.edges():
                assert by_key[(ptg.name, dst)].start >= by_key[(ptg.name, src)].finish - 1e-9

    def test_durations_match_cost_model(self, medium_platform, diamond_ptg):
        schedule = plan([diamond_ptg], medium_platform)
        report = ScheduleExecutor(medium_platform).execute([diamond_ptg], schedule)
        for record in report.records:
            entry = schedule.entry(record.ptg_name, record.task_id)
            cluster = medium_platform.cluster(record.cluster_name)
            task = diamond_ptg.task(record.task_id)
            expected = task.execution_time(entry.num_processors, cluster.speed_flops)
            assert record.duration == pytest.approx(expected)

    def test_measured_makespan_at_least_planned_span(self, medium_platform, random_workload):
        """Contention can only delay tasks with respect to the mapper's estimates."""
        schedule = plan(random_workload, medium_platform, beta=1 / 3)
        report = ScheduleExecutor(medium_platform).execute(random_workload, schedule)
        for ptg in random_workload:
            assert report.makespan(ptg.name) >= schedule.span(ptg.name) * 0.5

    def test_chain_executes_sequentially(self, medium_platform):
        ptg = make_chain_ptg(n=4)
        schedule = plan([ptg], medium_platform)
        report = ScheduleExecutor(medium_platform).execute([ptg], schedule)
        records = sorted(report.records, key=lambda r: r.task_id)
        for a, b in zip(records, records[1:]):
            assert b.start >= a.finish - 1e-9

    def test_missing_task_in_schedule_rejected(self, medium_platform, diamond_ptg):
        schedule = Schedule(medium_platform.name)
        schedule.add(
            ScheduledTask(
                ptg_name=diamond_ptg.name, task_id=0,
                cluster_name=medium_platform.cluster_names()[0],
                processors=(0,), start=0.0, finish=1.0,
            )
        )
        with pytest.raises(SimulationError):
            ScheduleExecutor(medium_platform).execute([diamond_ptg], schedule)

    def test_empty_workload_rejected(self, medium_platform):
        with pytest.raises(SimulationError):
            ScheduleExecutor(medium_platform).execute([], Schedule("x"))

    def test_measure_makespans_wrapper(self, medium_platform, diamond_ptg):
        schedule = plan([diamond_ptg], medium_platform)
        makespans = ScheduleExecutor(medium_platform).measure_makespans([diamond_ptg], schedule)
        assert set(makespans) == {diamond_ptg.name}
        assert makespans[diamond_ptg.name] > 0

    def test_network_counters_populated(self, medium_platform, random_workload):
        schedule = plan(random_workload, medium_platform, beta=1 / 3)
        report = ScheduleExecutor(medium_platform).execute(random_workload, schedule)
        # some redistribution crosses clusters in almost any mapping of a
        # multi-application workload on a three-cluster platform
        assert report.network_flows >= 0
        assert report.network_bytes >= 0


class TestReportAggregation:
    def test_report_quantities(self, medium_platform, random_workload):
        schedule = plan(random_workload, medium_platform, beta=1 / 3)
        report = ScheduleExecutor(medium_platform).execute(random_workload, schedule)
        assert set(report.application_names()) == {p.name for p in random_workload}
        assert report.global_makespan() == pytest.approx(
            max(report.makespans().values())
        )
        assert report.busy_processor_seconds() > 0
        assert 0 < report.utilisation(medium_platform.total_processors) <= 1
        assert report.total_delay() >= 0
        table = report.to_table()
        assert "makespan" in table

    def test_unknown_application(self, medium_platform, diamond_ptg):
        schedule = plan([diamond_ptg], medium_platform)
        report = ScheduleExecutor(medium_platform).execute([diamond_ptg], schedule)
        with pytest.raises(SimulationError):
            report.records_of("nope")
