"""Property-based tests on the fault-injection and repair invariants.

For arbitrary workloads crossed with arbitrary seeded fault plans, the
repair pass must always produce a schedule that the validator accepts in
perturbed-platform mode (no placement overlaps a down window, on top of
the usual completeness / capacity / precedence checks), and the whole
chain -- plan compilation, perturbed replay, repair -- must be
bit-identical when replayed with the same seeds.

CI runs this module under the derandomized profile
(``HYPOTHESIS_PROFILE=ci`` plus ``--hypothesis-seed=0``, see
``tests/conftest.py``), so the examples drawn are stable across runs.
"""

from hypothesis import example, given, settings, strategies as st

from repro.dag.generator import RandomPTGConfig, generate_random_ptg
from repro.faults.repair import repair_schedule
from repro.faults.spec import FaultSpec, compile_timeline
from repro.platform.builder import heterogeneous_platform
from repro.scenarios.registry import FAULTS
from repro.scheduler.concurrent import ConcurrentScheduler
from repro.simulate.executor import ScheduleExecutor
from repro.validate import validate_schedule

PLATFORM = heterogeneous_platform((6, 10), (2.0, 4.0), name="prop-platform")

PLAN_NAMES = [name for name in FAULTS.names() if name != "none"]


def build_workload(seed, n_apps, n_tasks):
    return [
        generate_random_ptg(
            seed + i, RandomPTGConfig(n_tasks=n_tasks), name=f"fault-{seed}-{i}"
        )
        for i in range(n_apps)
    ]


def build_case(seed, n_apps, n_tasks, plan, fault_seed, count):
    """Schedule one drawn workload and compile its fault timeline."""
    workload = build_workload(seed, n_apps, n_tasks)
    planned = ConcurrentScheduler().schedule(workload, PLATFORM).schedule
    makespan = max((e.finish for e in planned), default=0.0)
    spec = FaultSpec(
        plan=plan,
        seed=fault_seed,
        count=count,
        # strike inside the planned span so windows have a chance to hit
        start=0.25 * makespan,
        duration=max(1.0, 0.25 * makespan),
        gap=max(1.0, 0.2 * makespan),
    )
    timeline = compile_timeline(spec, PLATFORM)
    return workload, planned, spec, timeline


CASE = dict(
    seed=st.integers(min_value=0, max_value=10_000),
    n_apps=st.integers(min_value=1, max_value=3),
    n_tasks=st.integers(min_value=2, max_value=10),
    plan=st.sampled_from(PLAN_NAMES),
    fault_seed=st.integers(min_value=0, max_value=1_000),
    count=st.integers(min_value=1, max_value=3),
)


@settings(max_examples=20, deadline=None)
@example(seed=3, n_apps=3, n_tasks=10, plan="rolling", fault_seed=5, count=3)
@example(seed=0, n_apps=1, n_tasks=2, plan="correlated-cluster", fault_seed=0, count=1)
@given(**CASE)
def test_repaired_schedule_is_validator_clean_in_perturbed_mode(
    seed, n_apps, n_tasks, plan, fault_seed, count
):
    workload, planned, _, timeline = build_case(
        seed, n_apps, n_tasks, plan, fault_seed, count
    )
    outcome = repair_schedule(workload, planned, PLATFORM, timeline)
    report = validate_schedule(
        outcome.schedule, ptgs=workload, platform=PLATFORM, faults=timeline
    )
    assert report.ok, report.summary()
    # NOTE: the executor replays schedules work-conservingly (a task starts
    # as soon as its inputs and queue frontier allow), so a repaired entry
    # placed after a down window may *start* earlier in replay and still be
    # struck; the system invariant is the planned placement avoiding every
    # window, which is exactly what the perturbed validator checks above.
    metrics = outcome.metrics()
    # re-planning the tail can *improve* on the baseline packing, so the
    # inflation ratio is positive but not necessarily >= 1
    assert metrics["makespan_inflation"] > 0.0
    assert metrics["work_lost"] <= metrics["work_reexecuted"] + 1e-9
    assert metrics["recovery_latency"] >= 0.0


@settings(max_examples=10, deadline=None)
@example(seed=3, n_apps=2, n_tasks=8, plan="single-node", fault_seed=7, count=2)
@given(**CASE)
def test_same_seed_replay_is_bit_identical(
    seed, n_apps, n_tasks, plan, fault_seed, count
):
    def run_once():
        workload, planned, _, timeline = build_case(
            seed, n_apps, n_tasks, plan, fault_seed, count
        )
        replay = ScheduleExecutor(PLATFORM).execute(workload, planned, faults=timeline)
        outcome = repair_schedule(workload, planned, PLATFORM, timeline)
        failures = [
            (f.ptg_name, f.task_id, f.cluster_name, f.time, f.reason)
            for f in replay.failures
        ]
        rows = [
            (e.ptg_name, e.task_id, e.cluster_name, e.processors, e.start, e.finish)
            for e in sorted(
                outcome.schedule, key=lambda e: (e.ptg_name, e.task_id)
            )
        ]
        return timeline, failures, rows, outcome.metrics()

    assert run_once() == run_once()
