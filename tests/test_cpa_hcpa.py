"""Tests for the CPA and HCPA allocation procedures."""

import pytest

from repro.allocation.cpa import CPAAllocator
from repro.allocation.hcpa import HCPAAllocator
from repro.allocation.reference import ReferenceCluster
from repro.exceptions import AllocationError

from tests.conftest import make_chain_ptg, make_fork_join_ptg


class TestCPA:
    def test_requires_single_cluster(self, small_platform, chain_ptg):
        with pytest.raises(AllocationError):
            CPAAllocator().allocate(chain_ptg, small_platform)

    def test_allocates_on_single_cluster(self, single_cluster):
        ptg = make_chain_ptg(n=3, flops=100e9, alpha=0.05)
        alloc = CPAAllocator().allocate(ptg, single_cluster)
        assert all(1 <= p <= 16 for p in alloc.as_dict().values())
        assert any(p > 1 for p in alloc.as_dict().values())

    def test_balance_criterion_reached(self, single_cluster):
        ptg = make_chain_ptg(n=3, flops=100e9, alpha=0.05)
        alloc = CPAAllocator().allocate(ptg, single_cluster)
        ref = ReferenceCluster.of(single_cluster)
        t_cp = alloc.critical_path_length()
        t_a = alloc.total_area() / ref.size
        # CPA stops when T_CP <= T_A (or when no task can grow anymore)
        assert t_cp <= t_a * 1.5 + 1e-9


class TestHCPA:
    def test_chain_gets_large_allocations(self, small_platform):
        # a chain has no task parallelism: the whole share goes to the path
        ptg = make_chain_ptg(n=3, flops=200e9, alpha=0.02)
        alloc = HCPAAllocator().allocate(ptg, small_platform)
        assert max(alloc.as_dict().values()) > 2

    def test_fork_join_spreads_allocations(self, small_platform):
        ptg = make_fork_join_ptg(width=6, flops=50e9, alpha=0.05)
        alloc = HCPAAllocator().allocate(ptg, small_platform)
        branch_allocs = [alloc.processors(i) for i in range(1, 7)]
        # branches all look the same, so their allocations should be close
        assert max(branch_allocs) - min(branch_allocs) <= 2

    def test_beta_scales_down_allocations(self, small_platform):
        ptg = make_chain_ptg(n=4, flops=200e9, alpha=0.02)
        full = HCPAAllocator().allocate(ptg, small_platform, beta=1.0)
        constrained = HCPAAllocator().allocate(ptg, small_platform, beta=0.2)
        assert sum(constrained.as_dict().values()) <= sum(full.as_dict().values())

    def test_works_on_every_grid5000_site(self, lille):
        ptg = make_fork_join_ptg(width=4, flops=100e9, alpha=0.1)
        alloc = HCPAAllocator().allocate(ptg, lille)
        cap = ReferenceCluster.of(lille).max_allocation(lille)
        assert all(1 <= p <= cap for p in alloc.as_dict().values())

    def test_efficiency_guard_parameter(self, small_platform):
        ptg = make_chain_ptg(n=2, flops=500e9, alpha=0.25)
        loose = HCPAAllocator(efficiency_threshold=0.0).allocate(ptg, small_platform)
        tight = HCPAAllocator(efficiency_threshold=0.5).allocate(ptg, small_platform)
        assert max(tight.as_dict().values()) <= max(loose.as_dict().values())
