"""Fault-injection harness for the admission-daemon tests.

The daemon's application core is transport-agnostic, so faults are
injected *between* a simulated client and :meth:`ServiceApp.handle`:
:class:`FaultyTransport` drops, delays and duplicates requests by
request index according to a declarative :class:`FaultPlan`, and a
:class:`ManualClock` stands in for the wall clock so admission-latency
SLO behaviour is provable without sleeping.

Kill-and-restart is modelled the way a real crash behaves: the first
daemon is abandoned mid-stream (no graceful shutdown), a second daemon
restores from the store's last checkpoint, and the client re-submits
everything after its last acknowledged arrival -- duplicates answer 409
(admission is idempotent per application name), lost requests are
retried, and the final schedules must be bit-identical to a run that
was never interrupted.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.dag.graph import PTG
from repro.dag.io import ptg_to_dict
from repro.dag.task import Task
from repro.scenarios.spec import PipelineSpec, ScenarioSpec
from repro.service.app import Request, Response, ServiceApp
from repro.streaming.engine import Arrival, StreamSession


class ManualClock:
    """A callable clock the tests advance by hand (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        """Move time forward by *dt* seconds."""
        self.now += float(dt)


def make_service_spec(
    queue_depth: int = 8,
    slo: float = 0.5,
    retry_after: float = 0.05,
    platform: str = "lille",
    strategy: str = "ES",
    allocator: str = "hcpa",
) -> ScenarioSpec:
    """A small scenario with a ``service`` section (fast to schedule)."""
    return ScenarioSpec.from_dict(
        {
            "platform": platform,
            "pipeline": {"allocator": allocator, "mapper": "ready-list"},
            "strategies": [strategy],
            "service": {
                "queue_depth": queue_depth,
                "slo": slo,
                "retry_after": retry_after,
            },
        }
    )


def chain_ptg(name: str, n: int = 3, flops: float = 4e9) -> PTG:
    """A deterministic linear chain of *n* identical tasks."""
    graph = PTG(name)
    for i in range(n):
        graph.add_task(Task(i, flops=flops, alpha=0.1, data_elements=4e6))
    for i in range(n - 1):
        graph.add_edge(i, i + 1, 3.2e7)
    graph.validate()
    return graph


def make_arrivals(
    n: int,
    tenants: Sequence[str] = ("alpha", "beta"),
    spacing: float = 25.0,
) -> List[Tuple[str, float, PTG]]:
    """``(tenant, time, ptg)`` triples, tenants round-robin, times spaced."""
    return [
        (tenants[i % len(tenants)], i * spacing, chain_ptg(f"app-{i}", n=2 + i % 3))
        for i in range(n)
    ]


def submit_request(tenant: str, at: float, ptg: PTG) -> Request:
    """The ``POST /submit`` request of one arrival."""
    return Request(
        "POST",
        "/submit",
        body={"tenant": tenant, "time": at, "ptg": ptg_to_dict(ptg)},
    )


async def tenant_rows(app: ServiceApp, tenant: str) -> List[Dict]:
    """The validated schedule rows of one tenant (asserts a 200)."""
    response = await app.handle(Request("GET", "/schedule", query={"tenant": tenant}))
    assert response.status == 200, response.body
    assert response.body["valid"] is True
    return response.body["rows"]


async def all_tenant_rows(app: ServiceApp) -> Dict[str, List[Dict]]:
    """Validated schedule rows of every tenant of *app*."""
    return {name: await tenant_rows(app, name) for name in sorted(app.tenants)}


def replay_rows(
    spec: ScenarioSpec, arrivals: Sequence[Tuple[str, float, PTG]]
) -> Dict[str, List[Dict]]:
    """Per-tenant schedule rows of independent offline session replays.

    This is the determinism oracle: each tenant's arrivals are fed, in
    submission order, through a private :class:`StreamSession` built
    exactly the way the daemon builds tenant sessions.
    """
    from repro.streaming.run import schedule_to_rows

    per_tenant: Dict[str, List[Tuple[float, PTG]]] = {}
    for tenant, at, ptg in arrivals:
        per_tenant.setdefault(tenant, []).append((at, ptg))
    rows = {}
    for tenant, items in per_tenant.items():
        app = ServiceApp(spec)  # only used as a session factory here
        session: StreamSession = app._new_session()
        for at, ptg in items:
            session.admit(Arrival(ptg, at, tenant=tenant))
        rows[tenant] = schedule_to_rows(session.schedule)
    return dict(sorted(rows.items()))


@dataclass(frozen=True)
class FaultPlan:
    """Declarative faults keyed by submit-request index (0-based).

    ``drop`` requests never reach the daemon (the transport reports the
    loss so the client can retry); ``duplicate`` requests are delivered
    twice back-to-back; ``delay`` maps an index to the seconds the
    manual clock jumps before delivery (so the admission of everything
    already queued appears late against the SLO).
    """

    drop: FrozenSet[int] = frozenset()
    duplicate: FrozenSet[int] = frozenset()
    delay: Dict[int, float] = field(default_factory=dict)


class FaultyTransport:
    """Delivers submit requests to an app through a :class:`FaultPlan`."""

    def __init__(
        self,
        app: ServiceApp,
        plan: Optional[FaultPlan] = None,
        clock: Optional[ManualClock] = None,
    ) -> None:
        self.app = app
        self.plan = plan or FaultPlan()
        self.clock = clock
        self.sent = 0
        self.dropped: List[int] = []
        self.responses: List[Response] = []

    async def submit(self, tenant: str, at: float, ptg: PTG) -> Optional[Response]:
        """Deliver one submission; ``None`` means the request was lost."""
        index = self.sent
        self.sent += 1
        if index in self.plan.delay and self.clock is not None:
            self.clock.advance(self.plan.delay[index])
        if index in self.plan.drop:
            self.dropped.append(index)
            return None
        request = submit_request(tenant, at, ptg)
        response = await self.app.handle(request)
        if index in self.plan.duplicate:
            echo = await self.app.handle(request)
            # at-least-once delivery: the daemon dedupes by name
            assert echo.status == 409, echo.body
        self.responses.append(response)
        return response

    async def submit_reliably(
        self, tenant: str, at: float, ptg: PTG, retries: int = 3
    ) -> Response:
        """Submit with retry-on-loss (what a real client's retry loop does)."""
        for _ in range(retries + 1):
            response = await self.submit(tenant, at, ptg)
            if response is not None:
                return response
        raise AssertionError(f"submission of {ptg.name} lost {retries + 1} times")
