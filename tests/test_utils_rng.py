"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, sample_choice, sample_log_uniform, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).random(5)
        b = ensure_rng(7).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_seed_sequence_accepted(self):
        g = ensure_rng(np.random.SeedSequence(5))
        assert isinstance(g, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_deterministic(self):
        a = [g.random() for g in spawn_rngs(3, 4)]
        b = [g.random() for g in spawn_rngs(3, 4)]
        assert a == b

    def test_streams_are_independent(self):
        streams = spawn_rngs(3, 2)
        assert streams[0].random() != streams[1].random()


class TestSampling:
    def test_log_uniform_bounds(self):
        g = ensure_rng(0)
        values = sample_log_uniform(g, 10.0, 1000.0, size=200)
        assert np.all(values >= 10.0) and np.all(values <= 1000.0)

    def test_log_uniform_invalid_bounds(self):
        g = ensure_rng(0)
        with pytest.raises(ValueError):
            sample_log_uniform(g, -1.0, 10.0)
        with pytest.raises(ValueError):
            sample_log_uniform(g, 10.0, 1.0)

    def test_choice_returns_member(self):
        g = ensure_rng(0)
        options = ["a", "b", "c"]
        for _ in range(10):
            assert sample_choice(g, options) in options

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            sample_choice(ensure_rng(0), [])
