"""Tests for repro.platform.cluster."""

import pytest

from repro.exceptions import InvalidPlatformError
from repro.platform.cluster import Cluster, GFLOP


class TestClusterConstruction:
    def test_basic_properties(self):
        c = Cluster("grelon", 120, 3.185, site="nancy")
        assert c.num_processors == 120
        assert c.speed_gflops == 3.185
        assert c.site == "nancy"

    def test_power(self):
        c = Cluster("c", 10, 2.5)
        assert c.power_gflops == 25.0
        assert c.power_flops == 25.0 * GFLOP

    def test_speed_flops(self):
        c = Cluster("c", 1, 4.0)
        assert c.speed_flops == 4.0e9

    def test_processors_range(self):
        c = Cluster("c", 5, 1.0)
        assert list(c.processors()) == [0, 1, 2, 3, 4]

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Cluster("", 10, 1.0)

    @pytest.mark.parametrize("procs", [0, -3, 2.5])
    def test_invalid_processors_rejected(self, procs):
        with pytest.raises(InvalidPlatformError):
            Cluster("c", procs, 1.0)

    @pytest.mark.parametrize("speed", [0.0, -1.0])
    def test_invalid_speed_rejected(self, speed):
        with pytest.raises(InvalidPlatformError):
            Cluster("c", 10, speed)

    def test_frozen(self):
        c = Cluster("c", 10, 1.0)
        with pytest.raises(Exception):
            c.num_processors = 20

    def test_equality_ignores_site(self):
        assert Cluster("c", 10, 1.0, site="a") == Cluster("c", 10, 1.0, site="b")
