"""Tests for the own-makespan cache and content fingerprints."""

import pytest

from repro.campaigns.cache import (
    OwnMakespanCache,
    compute_own_makespans_cached,
    platform_fingerprint,
    ptg_fingerprint,
)
from repro.experiments.runner import compute_own_makespans
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.platform import grid5000
from repro.platform.builder import heterogeneous_platform


@pytest.fixture(scope="module")
def platform():
    return heterogeneous_platform((10, 14), (3.0, 4.0), name="cache-platform")


@pytest.fixture(scope="module")
def workload():
    return make_workload(WorkloadSpec("random", n_ptgs=3, seed=5, max_tasks=8))


class TestFingerprints:
    def test_ptg_fingerprint_ignores_names(self, workload):
        from repro.dag.io import ptg_from_dict, ptg_to_dict

        graph = workload[0]
        payload = ptg_to_dict(graph)
        payload["name"] = "renamed"
        for task in payload["tasks"]:
            task["name"] = f"other-{task['task_id']}"
        renamed = ptg_from_dict(payload)
        assert ptg_fingerprint(renamed) == ptg_fingerprint(graph)

    def test_ptg_fingerprint_distinguishes_content(self, workload):
        prints = {ptg_fingerprint(g) for g in workload}
        assert len(prints) == len(workload)  # random graphs differ in content

    def test_strassen_instances_share_costs_not_fingerprints(self):
        """Strassen PTGs share shape but differ in sampled costs."""
        graphs = make_workload(WorkloadSpec("strassen", n_ptgs=2, seed=1))
        assert graphs[0].n_tasks == graphs[1].n_tasks

    def test_platform_fingerprint_is_content_derived(self):
        assert platform_fingerprint(grid5000.lille()) == platform_fingerprint(
            grid5000.lille()
        )
        assert platform_fingerprint(grid5000.lille()) != platform_fingerprint(
            grid5000.nancy()
        )


class TestOwnMakespanCache:
    def test_hit_and_miss_accounting(self):
        cache = OwnMakespanCache()
        assert cache.get("a", "p") is None
        cache.put("a", "p", 3.5)
        assert cache.get("a", "p") == 3.5
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.new_entries == {"a:p": 3.5}

    def test_merge_tracks_new_entries(self):
        cache = OwnMakespanCache({"a:p": 1.0})
        cache.merge({"b:p": 2.0})
        assert cache.entries == {"a:p": 1.0, "b:p": 2.0}
        assert cache.new_entries == {"b:p": 2.0}

    def test_save_load_round_trip(self, tmp_path):
        cache = OwnMakespanCache({"a:p": 1.25, "b:q": 0.5})
        path = str(tmp_path / "cache.json")
        cache.save(path)
        loaded = OwnMakespanCache.load(path)
        assert loaded.entries == cache.entries
        assert loaded.new_entries == {}

    def test_load_missing_file_is_empty(self, tmp_path):
        cache = OwnMakespanCache.load(str(tmp_path / "absent.json"))
        assert len(cache) == 0


class TestComputeOwnMakespansCached:
    def test_matches_uncached_computation(self, platform, workload):
        cache = OwnMakespanCache()
        cached = compute_own_makespans_cached(workload, platform, cache)
        assert cached == compute_own_makespans(workload, platform)
        assert cache.misses == len(workload)

    def test_second_pass_is_all_hits(self, platform, workload):
        cache = OwnMakespanCache()
        first = compute_own_makespans_cached(workload, platform, cache)
        second = compute_own_makespans_cached(workload, platform, cache)
        assert second == first
        assert cache.hits == len(workload)
