"""Tests for repro.dag.task."""

import pytest

from repro.dag.cost_models import ComplexityClass
from repro.dag.task import Task
from repro.exceptions import ConfigurationError


class TestTaskConstruction:
    def test_defaults(self):
        t = Task(3, flops=1e9, alpha=0.1)
        assert t.name == "t3"
        assert not t.is_synthetic
        assert t.complexity is None

    def test_from_cost_model(self):
        t = Task.from_cost_model(0, ComplexityClass.LINEAR, 1e6, a_factor=10, alpha=0.2)
        assert t.flops == pytest.approx(1e7)
        assert t.data_elements == 1e6
        assert t.complexity is ComplexityClass.LINEAR

    def test_synthetic(self):
        t = Task.synthetic(5, name="__entry__")
        assert t.is_synthetic
        assert t.model is None
        assert t.execution_time(100, 1e9) == 0.0
        assert t.area(10, 1e9) == 0.0
        assert t.marginal_gain(1, 1e9) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(flops=-1, alpha=0.1),
            dict(flops=1e9, alpha=-0.1),
            dict(flops=1e9, alpha=1.1),
            dict(flops=1e9, alpha=0.1, data_elements=-5),
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            Task(0, **kwargs)

    def test_immutability(self):
        t = Task(0, flops=1e9, alpha=0.1)
        with pytest.raises(Exception):
            t.flops = 2e9


class TestTaskTiming:
    def test_execution_time_matches_amdahl(self):
        t = Task(0, flops=2e9, alpha=0.5)
        # (0.5 + 0.5/2) * 2e9 / 1e9 = 1.5
        assert t.execution_time(2, 1e9) == pytest.approx(1.5)

    def test_output_bytes(self):
        t = Task(0, flops=1e9, alpha=0.1, data_elements=4e6)
        assert t.output_bytes == pytest.approx(32e6)

    def test_invalid_processor_count(self):
        t = Task(0, flops=1e9, alpha=0.1)
        with pytest.raises(ConfigurationError):
            t.execution_time(0, 1e9)

    def test_area(self):
        t = Task(0, flops=1e9, alpha=0.0)
        assert t.area(4, 1e9) == pytest.approx(1.0)

    def test_marginal_gain_positive(self):
        t = Task(0, flops=1e9, alpha=0.1)
        assert t.marginal_gain(1, 1e9) > 0
