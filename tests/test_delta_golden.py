"""Golden tests for the sub-millisecond admission fast paths.

Three optimizations ride the admission hot path and each keeps its
reference formulation switchable as a golden fallback:

* **delta-EFT** placement (``PlacementEngine(delta=...)``, surfaced as
  ``StreamSession(delta=...)`` and the mappers' ``delta`` flag): cached
  per-cluster free-time frontiers with dominance cutoffs must pick the
  exact placements the full declaration-order scan picks;
* the **fused allocation loop** (``fast=...`` on the CPA-family
  allocators): incremental bottom levels and freeze-skip must produce
  the same allocations and iteration diagnostics as the per-iteration
  recomputation;
* the **batched multi-PTG kernels** (``compile_arrays_batch``,
  ``prepare_allocation_tables``, ``StreamSession(batch_compile=...)``):
  stacked-arena compilation must hand every consumer the same arrays and
  tables as the per-graph construction.

Every comparison is **exact** (``==`` on floats, no tolerance), the same
discipline as ``test_mapping_golden.py`` / ``test_allocation_golden.py``.
The suite also pins the transactional-admission contract (a failed
admission leaves the session bit-identical to one that never saw the
arrival) and the accessor error contract (``ConfigurationError``, never a
raw ``KeyError`` / ``StopIteration``).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.allocation.cpa import CPAAllocator
from repro.allocation.hcpa import HCPAAllocator
from repro.allocation.scrap import ScrapAllocator, ScrapMaxAllocator
from repro.allocation.state import (
    AllocationState,
    discard_allocation_tables,
    prepare_allocation_tables,
)
from repro.allocation.reference import ReferenceCluster
from repro.constraints.registry import paper_strategies
from repro.dag.arrays import compile_arrays, compile_arrays_batch
from repro.exceptions import AllocationError, ConfigurationError, MappingError
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.mapping.base import AllocatedPTG
from repro.mapping.global_order import GlobalOrderMapper
from repro.mapping.ready_list import ReadyListMapper
from repro.platform import grid5000
from repro.platform.builder import heterogeneous_platform, single_cluster_platform
from repro.streaming.engine import Arrival, OnlineScheduleResult, StreamSession
from repro.streaming.spec import ArrivalSpec, generate_arrivals
from repro.validate import validate_schedule

from tests.conftest import make_chain_ptg


def assert_identical_schedules(fast, reference):
    """Every placement field must match bit-for-bit."""
    assert len(fast) == len(reference)
    for entry in fast:
        ref = reference.entry(entry.ptg_name, entry.task_id)
        assert entry.cluster_name == ref.cluster_name, (entry, ref)
        assert entry.processors == ref.processors, (entry, ref)
        assert entry.start == ref.start, (entry, ref)
        assert entry.finish == ref.finish, (entry, ref)
        assert entry.reference_processors == ref.reference_processors, (entry, ref)


def assert_identical_stream_results(fast, ref):
    """Schedules and every tracked per-application quantity must match."""
    assert fast.betas == ref.betas
    assert fast.active_at_admission == ref.active_at_admission
    assert fast.completion_times == ref.completion_times
    assert fast.first_starts == ref.first_starts
    assert fast.arrival_times == ref.arrival_times
    assert_identical_schedules(fast.schedule, ref.schedule)


def optimized_session(platform, strategy=None, **kwargs):
    """A session with every fast path on (the production defaults)."""
    return StreamSession(platform, strategy, **kwargs)


def reference_session(platform, strategy=None, **kwargs):
    """A session forced onto every golden fallback path."""
    return StreamSession(
        platform,
        strategy,
        allocator=ScrapMaxAllocator(fast=False),
        delta=False,
        batch_compile=False,
        **kwargs,
    )


@pytest.fixture(scope="module")
def stream():
    spec = ArrivalSpec(
        process="poisson", rate=0.05, n_arrivals=12, seed=11,
        family="random", max_tasks=12,
    )
    return generate_arrivals(spec)


@pytest.fixture(scope="module")
def workload():
    return make_workload(WorkloadSpec(family="random", n_ptgs=4, seed=9, max_tasks=18))


class TestDeltaEFTGolden:
    """Delta-EFT admissions equal the full per-cluster evaluation."""

    @pytest.mark.parametrize("strategy", paper_strategies(), ids=lambda s: s.name)
    def test_stream_bit_identical_per_strategy(self, stream, strategy):
        platform = grid5000.composed()
        fast = optimized_session(platform, strategy)
        fast.feed(stream)
        ref = reference_session(platform, strategy)
        ref.feed(stream)
        assert_identical_stream_results(fast.result(), ref.result())

    @pytest.mark.parametrize("packing", [True, False], ids=["packing", "no-packing"])
    @pytest.mark.parametrize(
        "mapper_cls", [ReadyListMapper, GlobalOrderMapper],
        ids=["ready-list", "global-order"],
    )
    def test_mappers_bit_identical(self, workload, mapper_cls, packing):
        platform = grid5000.site("nancy")
        allocator = ScrapMaxAllocator()
        allocated = [
            AllocatedPTG(ptg, allocator.allocate(ptg, platform)) for ptg in workload
        ]
        fast = mapper_cls(enable_packing=packing, delta=True).map(allocated, platform)
        ref = mapper_cls(enable_packing=packing, delta=False).map(allocated, platform)
        assert_identical_schedules(fast, ref)

    @pytest.mark.parametrize("packing", [True, False], ids=["packing", "no-packing"])
    def test_stream_packing_modes_bit_identical(self, stream, packing):
        platform = grid5000.site("sophia")
        fast = optimized_session(platform, enable_packing=packing)
        fast.feed(stream)
        ref = reference_session(platform, enable_packing=packing)
        ref.feed(stream)
        assert_identical_stream_results(fast.result(), ref.result())


class TestFastLoopGolden:
    """The fused allocation loop equals the per-iteration recomputation."""

    ALLOCATORS = [
        (CPAAllocator, {"efficiency_threshold": 0.3}, single_cluster_platform(
            num_processors=24, speed_gflops=3.0)),
        (HCPAAllocator, {}, grid5000.site("lille")),
        (ScrapAllocator, {}, grid5000.site("nancy")),
        (ScrapMaxAllocator, {}, grid5000.site("nancy")),
    ]

    @pytest.mark.parametrize(
        "allocator_cls,kwargs,platform", ALLOCATORS,
        ids=["cpa", "hcpa", "scrap", "scrap-max"],
    )
    @pytest.mark.parametrize("beta", [0.25, 0.6, 1.0])
    def test_allocations_and_stats_bit_identical(
        self, workload, allocator_cls, kwargs, platform, beta
    ):
        for ptg in workload:
            fast_alloc = allocator_cls(fast=True, **kwargs)
            slow_alloc = allocator_cls(fast=False, **kwargs)
            fast = fast_alloc.allocate(ptg, platform, beta=beta)
            slow = slow_alloc.allocate(ptg, platform, beta=beta)
            for task in ptg.tasks():
                assert fast.processors(task.task_id) == slow.processors(task.task_id)
            if hasattr(fast_alloc, "last_stats"):
                assert fast_alloc.last_stats == slow_alloc.last_stats

    def test_freeze_heavy_case_bit_identical(self):
        """A tiny beta forces many per-level freezes (the freeze-skip path)."""
        platform = grid5000.site("lille")
        ptg = make_workload(
            WorkloadSpec(family="random", n_ptgs=1, seed=3, max_tasks=25)
        )[0]
        fast_alloc = ScrapMaxAllocator(fast=True)
        slow_alloc = ScrapMaxAllocator(fast=False)
        fast = fast_alloc.allocate(ptg, platform, beta=0.1)
        slow = slow_alloc.allocate(ptg, platform, beta=0.1)
        for task in ptg.tasks():
            assert fast.processors(task.task_id) == slow.processors(task.task_id)
        assert fast_alloc.last_stats == slow_alloc.last_stats
        assert fast_alloc.last_stats.frozen_tasks > 0  # the case exercises freezes


class TestBatchedKernels:
    """Stacked-arena compilation equals the per-graph construction."""

    def test_compile_arrays_batch_matches_single(self, workload):
        singles = [compile_arrays(ptg) for ptg in workload]
        fresh = [ptg.copy(name=f"{ptg.name}-copy") for ptg in workload]
        batched = compile_arrays_batch(fresh)
        for single, batch in zip(singles, batched):
            for name in (
                "task_ids", "flops", "alpha", "synthetic", "topo", "levels",
                "level_members", "level_offsets", "pred_ptr", "pred_idx",
                "succ_ptr", "succ_idx", "entries", "exits",
            ):
                assert np.array_equal(getattr(single, name), getattr(batch, name))
            assert single.index_of == batch.index_of

    def test_batch_compilation_seeds_the_graph_cache(self, workload):
        fresh = [ptg.copy(name=f"{ptg.name}-cache") for ptg in workload]
        batched = compile_arrays_batch(fresh)
        for ptg, arrays in zip(fresh, batched):
            assert ptg.arrays() is arrays

    def test_prepared_tables_bit_identical(self, workload):
        platform = grid5000.site("nancy")
        reference = ReferenceCluster.of(platform)
        cap = reference.max_allocation(platform)
        plain = [AllocationState(ptg, reference, cap) for ptg in workload]
        fresh = [ptg.copy(name=f"{ptg.name}-tables") for ptg in workload]
        prepare_allocation_tables(fresh, reference, cap)
        for single, ptg in zip(plain, fresh):
            prepared = AllocationState(ptg, reference, cap)
            assert np.array_equal(single.durations_table, prepared.durations_table)
            assert np.array_equal(single.areas_table, prepared.areas_table)
            assert np.array_equal(single.gain_table, prepared.gain_table)
            discard_allocation_tables(ptg)

    def test_discard_drops_the_cached_tables(self):
        platform = grid5000.site("lille")
        reference = ReferenceCluster.of(platform)
        cap = reference.max_allocation(platform)
        ptg = make_chain_ptg("tables", n=4)
        prepare_allocation_tables([ptg], reference, cap)
        assert "alloc_tables" in ptg._cache
        discard_allocation_tables(ptg)
        assert "alloc_tables" not in ptg._cache
        discard_allocation_tables(ptg)  # idempotent

    def test_batched_feed_bit_identical(self, stream):
        platform = grid5000.composed()
        fast = StreamSession(platform, batch_compile=True)
        fast.feed(stream)
        ref = StreamSession(platform, batch_compile=False)
        ref.feed(stream)
        assert_identical_stream_results(fast.result(), ref.result())


class ExplodingAllocator(ScrapMaxAllocator):
    """Allocator that raises for one specific application name."""

    def __init__(self, poison: str) -> None:
        super().__init__()
        self.poison = poison

    def allocate(self, ptg, platform, beta=1.0):
        if ptg.name == self.poison:
            raise AllocationError(f"poisoned application {ptg.name!r}")
        return super().allocate(ptg, platform, beta=beta)


class TestTransactionalAdmit:
    """A failed admission leaves the session bit-identical to a clean one."""

    def _assert_sessions_identical(self, session, control):
        assert session.admitted == control.admitted
        assert session.active_applications == control.active_applications
        assert session.completions == control.completions
        assert session.last_admission == control.last_admission
        assert len(session.schedule) == len(control.schedule)
        assert session.engine.packed_tasks == control.engine.packed_tasks
        for cluster in session.platform.cluster_names():
            ours = session.engine.timelines.timeline(cluster)
            theirs = control.engine.timelines.timeline(cluster)
            assert np.array_equal(ours._free_at, theirs._free_at)

    def test_failed_allocation_rolls_back_everything(self, medium_platform):
        prefix = [
            Arrival(make_chain_ptg("a", n=3, flops=20e9), 0.0),
            Arrival(make_chain_ptg("b", n=3, flops=20e9), 5.0),
        ]
        session = StreamSession(medium_platform, allocator=ExplodingAllocator("boom"))
        control = StreamSession(medium_platform, allocator=ExplodingAllocator("boom"))
        session.feed(prefix)
        control.feed(prefix)
        with pytest.raises(AllocationError):
            session.admit(Arrival(make_chain_ptg("boom", n=2), 10.0))
        self._assert_sessions_identical(session, control)
        # both sessions keep admitting identically after the failure
        tail = Arrival(make_chain_ptg("c", n=3, flops=20e9), 20.0)
        session.admit(tail)
        control.admit(tail)
        assert_identical_stream_results(session.result(), control.result())

    def test_failed_mapping_rolls_back_reservations(self, medium_platform):
        prefix = [Arrival(make_chain_ptg("a", n=4, flops=20e9), 0.0)]
        session = StreamSession(medium_platform)
        control = StreamSession(medium_platform)
        session.feed(prefix)
        control.feed(prefix)

        # fail after two tasks of the newcomer were already reserved
        original_place = session.engine.place
        calls = {"n": 0}

        def exploding_place(**kwargs):
            if calls["n"] >= 2:
                raise MappingError("injected placement failure")
            calls["n"] += 1
            return original_place(**kwargs)

        session.engine.place = exploding_place
        with pytest.raises(MappingError):
            session.admit(Arrival(make_chain_ptg("partial", n=5, flops=20e9), 1.0))
        session.engine.place = original_place

        self._assert_sessions_identical(session, control)
        tail = Arrival(make_chain_ptg("after", n=3, flops=20e9), 2.0)
        session.admit(tail)
        control.admit(tail)
        assert_identical_stream_results(session.result(), control.result())

    def test_failed_admission_does_not_commit_retirements(self, medium_platform):
        session = StreamSession(medium_platform, allocator=ExplodingAllocator("boom"))
        done = session.admit(Arrival(make_chain_ptg("early", n=2, flops=10e9), 0.0))
        # the poisoned arrival lands after "early" completed: the staged
        # retirement must be discarded together with the failed admission
        with pytest.raises(AllocationError):
            session.admit(Arrival(make_chain_ptg("boom", n=2), done + 1.0))
        assert session.active_applications == ["early"]
        assert session.admitted == 1


class TestErrorContracts:
    """Public result accessors raise ConfigurationError, never raw lookups."""

    def _stream_result(self, medium_platform):
        session = StreamSession(medium_platform)
        session.feed([Arrival(make_chain_ptg("only", n=2, flops=10e9), 0.0)])
        return session.result()

    def _base_result(self, medium_platform):
        streamed = self._stream_result(medium_platform)
        return OnlineScheduleResult(
            platform=streamed.platform,
            arrivals=streamed.arrivals,
            betas=streamed.betas,
            active_at_admission=streamed.active_at_admission,
            allocations=streamed.allocations,
            schedule=streamed.schedule,
            strategy_name=streamed.strategy_name,
        )

    @pytest.mark.parametrize(
        "accessor", ["completion_time", "makespan", "waiting_time"]
    )
    def test_stream_result_accessors(self, medium_platform, accessor):
        result = self._stream_result(medium_platform)
        with pytest.raises(ConfigurationError, match="ghost"):
            getattr(result, accessor)("ghost")

    @pytest.mark.parametrize("accessor", ["completion_time", "makespan"])
    def test_online_result_accessors(self, medium_platform, accessor):
        result = self._base_result(medium_platform)
        with pytest.raises(ConfigurationError, match="ghost"):
            getattr(result, accessor)("ghost")

    def test_known_names_still_resolve(self, medium_platform):
        streamed = self._stream_result(medium_platform)
        base = self._base_result(medium_platform)
        assert streamed.completion_time("only") == base.completion_time("only")
        assert streamed.makespan("only") == base.makespan("only")
        assert streamed.waiting_time("only") >= 0.0


class TestDeltaEFTProperties:
    """Random online streams: delta admissions stay exact and valid."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_arrivals=st.integers(min_value=1, max_value=6),
        rate=st.floats(min_value=0.005, max_value=0.5),
        process=st.sampled_from(["poisson", "mmpp"]),
    )
    def test_delta_streams_bit_identical_and_validator_clean(
        self, seed, n_arrivals, rate, process
    ):
        platform = heterogeneous_platform((6, 10), (2.0, 4.0), name="delta-prop")
        spec = ArrivalSpec(
            process=process, rate=rate, n_arrivals=n_arrivals, seed=seed,
            family="random", max_tasks=8,
        )
        stream = generate_arrivals(spec)
        fast = optimized_session(platform)
        fast.feed(stream)
        ref = reference_session(platform)
        ref.feed(stream)
        fast_result, ref_result = fast.result(), ref.result()
        assert_identical_stream_results(fast_result, ref_result)
        report = validate_schedule(
            fast_result.schedule, [a.ptg for a in stream], platform
        )
        assert report.ok, [str(v) for v in report.violations]
