"""Tests for the online (staggered submission) scheduler extension."""

import pytest

from repro.constraints.strategies import EqualShareStrategy, SelfishStrategy
from repro.exceptions import ConfigurationError
from repro.scheduler.online import Arrival, OnlineConcurrentScheduler
from repro.simulate.executor import ScheduleExecutor

from tests.conftest import make_chain_ptg, make_fork_join_ptg


class TestArrival:
    def test_negative_time_rejected(self, chain_ptg):
        with pytest.raises(ConfigurationError):
            Arrival(chain_ptg, time=-1.0)

    def test_default_time_zero(self, chain_ptg):
        assert Arrival(chain_ptg).time == 0.0


class TestOnlineScheduler:
    def test_single_application_gets_full_platform(self, medium_platform, chain_ptg):
        scheduler = OnlineConcurrentScheduler(EqualShareStrategy())
        result = scheduler.schedule([Arrival(chain_ptg, 0.0)], medium_platform)
        assert result.betas[chain_ptg.name] == pytest.approx(1.0)
        assert result.active_at_admission[chain_ptg.name] == []

    def test_no_task_starts_before_submission(self, medium_platform):
        first = make_chain_ptg("first", n=3, flops=50e9)
        second = make_chain_ptg("second", n=3, flops=50e9)
        scheduler = OnlineConcurrentScheduler(EqualShareStrategy())
        result = scheduler.schedule(
            [Arrival(first, 0.0), Arrival(second, 30.0)], medium_platform
        )
        for entry in result.schedule.entries_of("second"):
            assert entry.start >= 30.0 - 1e-9

    def test_constraint_recomputed_on_arrival(self, medium_platform):
        """A second application arriving while the first still runs gets half
        of the platform; one arriving after the first completed gets all of it."""
        long_app = make_chain_ptg("long", n=6, flops=400e9)
        overlap = make_chain_ptg("overlap", n=2, flops=10e9)
        late = make_chain_ptg("late", n=2, flops=10e9)
        scheduler = OnlineConcurrentScheduler(EqualShareStrategy())
        first = scheduler.schedule([Arrival(long_app, 0.0)], medium_platform)
        long_completion = first.completion_time("long")

        result = scheduler.schedule(
            [
                Arrival(long_app, 0.0),
                Arrival(overlap, long_completion * 0.25),
                Arrival(late, long_completion * 4.0),
            ],
            medium_platform,
        )
        assert result.betas["long"] == pytest.approx(1.0)
        assert result.betas["overlap"] == pytest.approx(0.5)
        assert result.betas["late"] == pytest.approx(1.0)
        assert result.active_at_admission["overlap"] == ["long"]
        assert result.active_at_admission["late"] == []

    def test_existing_reservations_untouched(self, medium_platform):
        """Admitting a later application never changes the earlier schedule."""
        first = make_fork_join_ptg("first", width=4, flops=60e9)
        second = make_fork_join_ptg("second", width=4, flops=60e9)
        scheduler = OnlineConcurrentScheduler(SelfishStrategy())
        alone = scheduler.schedule([Arrival(first, 0.0)], medium_platform)
        both = scheduler.schedule(
            [Arrival(first, 0.0), Arrival(second, 5.0)], medium_platform
        )
        for entry in alone.schedule.entries_of("first"):
            other = both.schedule.entry("first", entry.task_id)
            assert other.start == pytest.approx(entry.start)
            assert other.cluster_name == entry.cluster_name
            assert other.processors == entry.processors

    def test_schedule_is_consistent_and_simulatable(self, medium_platform, random_workload):
        arrivals = [Arrival(p, 10.0 * i) for i, p in enumerate(random_workload)]
        scheduler = OnlineConcurrentScheduler(EqualShareStrategy())
        result = scheduler.schedule(arrivals, medium_platform)
        result.schedule.validate_no_overlap()
        result.schedule.validate_precedences(random_workload)
        # makespans are measured from each application's own submission
        for arrival in arrivals:
            assert result.makespan(arrival.ptg.name) == pytest.approx(
                result.completion_time(arrival.ptg.name) - arrival.time
            )
            assert result.makespan(arrival.ptg.name) > 0
        assert set(result.makespans()) == {p.name for p in random_workload}

    def test_duplicate_names_rejected(self, medium_platform):
        a = make_chain_ptg("same")
        b = make_chain_ptg("same")
        with pytest.raises(ConfigurationError):
            OnlineConcurrentScheduler().schedule(
                [Arrival(a, 0.0), Arrival(b, 1.0)], medium_platform
            )

    def test_empty_arrivals_rejected(self, medium_platform):
        with pytest.raises(ConfigurationError):
            OnlineConcurrentScheduler().schedule([], medium_platform)

    def test_arrivals_processed_in_time_order(self, medium_platform):
        early = make_chain_ptg("early", n=2, flops=20e9)
        later = make_chain_ptg("later", n=2, flops=20e9)
        scheduler = OnlineConcurrentScheduler(EqualShareStrategy())
        # pass them out of order on purpose
        result = scheduler.schedule(
            [Arrival(later, 50.0), Arrival(early, 0.0)], medium_platform
        )
        assert result.application_names == ["early", "later"]
