"""Tests for the eight resource-constraint determination strategies."""

import pytest

from repro.constraints.strategies import (
    EqualShareStrategy,
    ProportionalShareStrategy,
    SelfishStrategy,
    WeightedProportionalShareStrategy,
)
from repro.exceptions import ConfigurationError

from tests.conftest import make_chain_ptg, make_fork_join_ptg


@pytest.fixture
def mixed_workload():
    """Three applications with clearly different characteristics."""
    return [
        make_chain_ptg("long-chain", n=8, flops=20e9),
        make_fork_join_ptg("wide", width=8, flops=5e9),
        make_chain_ptg("tiny", n=2, flops=2e9),
    ]


class TestSelfish:
    def test_all_ones(self, small_platform, mixed_workload):
        betas = SelfishStrategy().compute_betas(mixed_workload, small_platform)
        assert all(beta == 1.0 for beta in betas.values())
        assert set(betas) == {p.name for p in mixed_workload}

    def test_empty_workload_rejected(self, small_platform):
        with pytest.raises(ConfigurationError):
            SelfishStrategy().compute_betas([], small_platform)

    def test_duplicate_names_rejected(self, small_platform):
        ptgs = [make_chain_ptg("same"), make_chain_ptg("same")]
        with pytest.raises(ConfigurationError):
            SelfishStrategy().compute_betas(ptgs, small_platform)


class TestEqualShare:
    def test_equal_split(self, small_platform, mixed_workload):
        betas = EqualShareStrategy().compute_betas(mixed_workload, small_platform)
        assert all(beta == pytest.approx(1 / 3) for beta in betas.values())

    def test_single_application_gets_everything(self, small_platform, chain_ptg):
        betas = EqualShareStrategy().compute_betas([chain_ptg], small_platform)
        assert betas[chain_ptg.name] == pytest.approx(1.0)

    @pytest.mark.parametrize("count", [2, 4, 6, 8, 10])
    def test_paper_counts(self, small_platform, count):
        ptgs = [make_chain_ptg(f"app-{i}") for i in range(count)]
        betas = EqualShareStrategy().compute_betas(ptgs, small_platform)
        assert all(beta == pytest.approx(1.0 / count) for beta in betas.values())


class TestProportionalShare:
    def test_betas_sum_to_one(self, small_platform, mixed_workload):
        for characteristic in ("cp", "width", "work"):
            betas = ProportionalShareStrategy(characteristic).compute_betas(
                mixed_workload, small_platform
            )
            assert sum(betas.values()) == pytest.approx(1.0, rel=1e-3)

    def test_work_strategy_favours_heavy_application(self, small_platform, mixed_workload):
        betas = ProportionalShareStrategy("work").compute_betas(
            mixed_workload, small_platform
        )
        assert betas["long-chain"] > betas["tiny"]

    def test_width_strategy_favours_wide_application(self, small_platform, mixed_workload):
        betas = ProportionalShareStrategy("width").compute_betas(
            mixed_workload, small_platform
        )
        assert betas["wide"] > betas["long-chain"]

    def test_cp_strategy_favours_long_critical_path(self, small_platform, mixed_workload):
        betas = ProportionalShareStrategy("cp").compute_betas(
            mixed_workload, small_platform
        )
        assert betas["long-chain"] > betas["wide"]

    def test_identical_applications_get_equal_share(self, small_platform):
        ptgs = [make_chain_ptg(f"app-{i}", n=4) for i in range(4)]
        betas = ProportionalShareStrategy("work").compute_betas(ptgs, small_platform)
        assert all(beta == pytest.approx(0.25) for beta in betas.values())

    def test_name_embeds_characteristic(self):
        assert ProportionalShareStrategy("width").name == "PS-width"

    def test_unknown_characteristic(self):
        with pytest.raises(ConfigurationError):
            ProportionalShareStrategy("volume")

    def test_betas_strictly_positive(self, small_platform, mixed_workload):
        betas = ProportionalShareStrategy("work").compute_betas(
            mixed_workload, small_platform
        )
        assert all(beta > 0 for beta in betas.values())


class TestWeightedProportionalShare:
    def test_mu_zero_equals_ps(self, small_platform, mixed_workload):
        wps = WeightedProportionalShareStrategy("work", mu=0.0)
        ps = ProportionalShareStrategy("work")
        assert wps.compute_betas(mixed_workload, small_platform) == pytest.approx(
            ps.compute_betas(mixed_workload, small_platform)
        )

    def test_mu_one_equals_es(self, small_platform, mixed_workload):
        wps = WeightedProportionalShareStrategy("work", mu=1.0)
        es = EqualShareStrategy()
        assert wps.compute_betas(mixed_workload, small_platform) == pytest.approx(
            es.compute_betas(mixed_workload, small_platform)
        )

    def test_intermediate_mu_between_extremes(self, small_platform, mixed_workload):
        ps = ProportionalShareStrategy("work").compute_betas(mixed_workload, small_platform)
        es = EqualShareStrategy().compute_betas(mixed_workload, small_platform)
        wps = WeightedProportionalShareStrategy("work", mu=0.7).compute_betas(
            mixed_workload, small_platform
        )
        for name in wps:
            low, high = sorted((ps[name], es[name]))
            assert low - 1e-9 <= wps[name] <= high + 1e-9

    def test_equation_2(self, small_platform, mixed_workload):
        mu = 0.4
        strategy = WeightedProportionalShareStrategy("work", mu=mu)
        betas = strategy.compute_betas(mixed_workload, small_platform)
        total_work = sum(p.total_work() for p in mixed_workload)
        n = len(mixed_workload)
        for ptg in mixed_workload:
            expected = mu / n + (1 - mu) * ptg.total_work() / total_work
            assert betas[ptg.name] == pytest.approx(expected)

    def test_invalid_mu(self):
        with pytest.raises(ConfigurationError):
            WeightedProportionalShareStrategy("work", mu=1.5)

    def test_name(self):
        assert WeightedProportionalShareStrategy("cp", mu=0.5).name == "WPS-cp"

    def test_betas_sum_to_one(self, small_platform, mixed_workload):
        betas = WeightedProportionalShareStrategy("width", mu=0.3).compute_betas(
            mixed_workload, small_platform
        )
        assert sum(betas.values()) == pytest.approx(1.0, rel=1e-3)
