"""Tests of the schedule-invariant validator."""

import math

import pytest

from repro.constraints.strategies import EqualShareStrategy
from repro.exceptions import MappingError
from repro.experiments.runner import run_experiment
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.mapping.schedule import Schedule, ScheduledTask
from repro.platform.builder import heterogeneous_platform
from repro.scheduler.concurrent import ConcurrentScheduler
from repro.scheduler.online import Arrival, OnlineConcurrentScheduler
from repro.validate import (
    ValidationReport,
    Violation,
    validate_experiment_metrics,
    validate_result,
    validate_schedule,
)

from tests.conftest import make_chain_ptg

PLATFORM = heterogeneous_platform((6, 10), (2.0, 4.0), name="validate-platform")


def entry(ptg="app", task=0, cluster=None, procs=(0,), start=0.0, finish=1.0):
    return ScheduledTask(
        ptg_name=ptg,
        task_id=task,
        cluster_name=cluster or PLATFORM.cluster_names()[0],
        processors=tuple(procs),
        start=start,
        finish=finish,
    )


class TestCleanSchedules:
    def test_valid_concurrent_schedule_passes_every_check(self):
        workload = make_workload(
            WorkloadSpec(family="random", n_ptgs=3, seed=1, max_tasks=12)
        )
        result = ConcurrentScheduler(EqualShareStrategy()).schedule(
            workload, PLATFORM
        )
        report = validate_schedule(result.schedule, workload, PLATFORM)
        assert report.ok, [str(v) for v in report.violations]
        assert report.entries_checked == len(result.schedule)
        assert report.applications_checked == 3
        assert set(report.checks) == {
            "times", "overlap", "capacity", "completeness", "precedence",
        }
        report.raise_if_invalid()  # no-op on clean schedules

    def test_online_result_validates_with_releases(self):
        a = make_chain_ptg("a", n=3, flops=30e9)
        b = make_chain_ptg("b", n=3, flops=30e9)
        result = OnlineConcurrentScheduler(EqualShareStrategy()).schedule(
            [Arrival(a, 0.0), Arrival(b, 25.0)], PLATFORM
        )
        report = validate_result(result)
        assert report.ok
        assert "release" in report.checks

    def test_summary_mentions_status(self):
        report = validate_schedule(Schedule("p"))
        assert report.ok
        assert "OK" in report.summary()


class TestViolations:
    def test_overlap_detected(self):
        schedule = Schedule("p")
        schedule.add(entry(task=0, procs=(0, 1), start=0.0, finish=10.0))
        schedule.add(entry(task=1, procs=(1,), start=5.0, finish=12.0))
        report = validate_schedule(schedule)
        assert not report.ok
        assert [v.kind for v in report.violations] == ["overlap"]
        with pytest.raises(MappingError):
            report.raise_if_invalid()

    def test_shared_endpoint_is_not_an_overlap(self):
        schedule = Schedule("p")
        schedule.add(entry(task=0, procs=(0,), start=0.0, finish=10.0))
        schedule.add(entry(task=1, procs=(0,), start=10.0, finish=12.0))
        assert validate_schedule(schedule).ok

    def test_nan_and_inf_times_detected(self):
        schedule = Schedule("p")
        schedule.add(entry(task=0, start=float("nan"), finish=float("nan")))
        schedule.add(entry(task=1, start=1.0, finish=float("inf")))
        report = validate_schedule(schedule)
        kinds = [v.kind for v in report.violations]
        assert kinds.count("times") == 2

    def test_capacity_violations_detected(self):
        schedule = Schedule("p")
        # more processors than the 6-processor cluster has
        schedule.add(entry(task=0, procs=tuple(range(8)), finish=1.0))
        # unknown cluster
        schedule.add(entry(task=1, cluster="nowhere"))
        report = validate_schedule(schedule, platform=PLATFORM)
        kinds = sorted(v.kind for v in report.violations)
        assert kinds == ["capacity", "capacity", "capacity"]  # count + indices + unknown

    def test_precedence_and_completeness_detected(self):
        ptg = make_chain_ptg("chain", n=3, flops=10e9)
        ids = ptg.task_ids()
        schedule = Schedule("p")
        # second task starts before the first finishes; third is missing
        schedule.add(entry(ptg="chain", task=ids[0], start=0.0, finish=10.0))
        schedule.add(entry(ptg="chain", task=ids[1], procs=(1,), start=5.0, finish=15.0))
        # and one entry no submitted task matches
        schedule.add(entry(ptg="ghost", task=99, procs=(2,)))
        report = validate_schedule(schedule, ptgs=[ptg])
        kinds = sorted(v.kind for v in report.violations)
        assert "precedence" in kinds
        assert kinds.count("completeness") >= 2  # missing task + ghost entry

    def test_release_violation_detected(self):
        schedule = Schedule("p")
        schedule.add(entry(task=0, start=1.0, finish=2.0))
        report = validate_schedule(schedule, releases={"app": 5.0})
        assert [v.kind for v in report.violations] == ["release"]

    def test_violation_str_is_informative(self):
        violation = Violation("overlap", "boom", ptg_name="app", task_id=3)
        text = str(violation)
        assert "overlap" in text and "app" in text and "3" in text


class TestResultDispatch:
    def test_result_without_schedule_rejected(self):
        with pytest.raises(MappingError):
            validate_result(object())

    def test_merge_accumulates(self):
        first = validate_schedule(Schedule("p"))
        second = ValidationReport()
        second.add("times", "bad")
        first.merge(second)
        assert not first.ok


class TestExperimentMetrics:
    def _experiment(self):
        workload = make_workload(
            WorkloadSpec(family="random", n_ptgs=2, seed=3, max_tasks=10)
        )
        return run_experiment(workload, PLATFORM, [EqualShareStrategy()])

    def test_stored_metrics_are_consistent(self):
        report = validate_experiment_metrics(self._experiment())
        assert report.ok, [str(v) for v in report.violations]

    def test_tampered_slowdown_detected(self):
        result = self._experiment()
        outcome = result.outcomes["ES"]
        victim = next(iter(outcome.slowdowns))
        outcome.slowdowns[victim] *= 1.5
        report = validate_experiment_metrics(result)
        assert not report.ok
        assert any(v.kind == "metrics" for v in report.violations)

    def test_non_finite_makespan_detected(self):
        result = self._experiment()
        outcome = result.outcomes["ES"]
        victim = next(iter(outcome.makespans))
        outcome.makespans[victim] = math.nan
        report = validate_experiment_metrics(result)
        assert not report.ok
