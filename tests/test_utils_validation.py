"""Tests for repro.utils.validation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    check_fraction,
    check_in_unit_interval,
    check_int_at_least,
    check_non_negative,
    check_positive,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    @pytest.mark.parametrize("value", [0, -1, -0.5, "nope", None])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative("x", 0)
        check_non_negative("x", 3.5)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -0.1)


class TestUnitInterval:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_closed(self, value):
        check_in_unit_interval("mu", value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, "x"])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_in_unit_interval("mu", value)

    def test_open_low_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            check_in_unit_interval("beta", 0.0, closed_low=False)


class TestFraction:
    def test_accepts_beta_range(self):
        check_fraction("beta", 0.0001)
        check_fraction("beta", 1.0)

    @pytest.mark.parametrize("value", [0.0, -0.5, 1.5])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_fraction("beta", value)


class TestIntAtLeast:
    def test_accepts(self):
        check_int_at_least("n", 3, 1)

    @pytest.mark.parametrize("value", [0, 2.5, True, "3"])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_int_at_least("n", value, 1)
