"""Golden-allocation suite: the array-compiled core is bit-identical.

The fast allocation core (:class:`repro.allocation.state.AllocationState`
driving :func:`repro.allocation.iterative.run_iterative_allocation`) is a
pure performance refactor: for every procedure of the CPA family -- CPA,
HCPA (with and without the over-allocation guard), SCRAP and SCRAP-MAX --
it must produce exactly the same :class:`~repro.allocation.base.Allocation`
contents **and** :class:`~repro.allocation.iterative.IterationStats` as
the pre-refactor loop kept in :mod:`repro.allocation._reference`.

Every comparison below is **exact** (``==`` on the processor dicts and on
the stats dataclass, no tolerance): the optimized arithmetic reproduces
the scalar IEEE-754 operation order (fold-left sums included), so any
drift is a regression.  Coverage follows the paper's workload shapes: a
seeded batch of ~50 random PTGs (the fig2/fig3 family) plus the FFT
(fig4) and Strassen (fig5) families, across several betas and platforms.
"""

import pytest

from repro.allocation._reference import run_reference_allocation
from repro.allocation.cpa import CPAAllocator
from repro.allocation.hcpa import HCPAAllocator
from repro.allocation.iterative import (
    AreaConstraint,
    ConstraintCheck,
    LevelConstraint,
    NoConstraint,
    run_iterative_allocation,
)
from repro.allocation.reference import ReferenceCluster
from repro.allocation.scrap import ScrapAllocator, ScrapMaxAllocator
from repro.allocation.state import AllocationState
from repro.dag.arrays import SMALL_GRAPH_CUTOFF
from repro.dag.generator import RandomPTGConfig, generate_random_ptg
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.platform import grid5000
from repro.platform.builder import single_cluster_platform

BETAS = (0.25, 0.6, 1.0)

#: (label, constraint factory, extra run kwargs) -- the four procedures.
PROCEDURES = (
    ("CPA", lambda beta, power: NoConstraint(), {}),
    ("HCPA-guarded", lambda beta, power: NoConstraint(), {"efficiency_threshold": 0.5}),
    ("SCRAP", AreaConstraint, {}),
    ("SCRAP-MAX", LevelConstraint, {}),
)


def assert_identical_runs(ptg, platform, beta, constraint_factory, **kwargs):
    """Fast and reference loop agree exactly on allocation and stats."""
    reference = ReferenceCluster.of(platform)
    power = platform.total_power_gflops
    fast_alloc, fast_stats = run_iterative_allocation(
        ptg, platform, reference, beta, constraint_factory(beta, power), **kwargs
    )
    ref_alloc, ref_stats = run_reference_allocation(
        ptg, platform, reference, beta, constraint_factory(beta, power), **kwargs
    )
    assert fast_alloc.as_dict() == ref_alloc.as_dict(), (ptg.name, beta)
    assert fast_stats == ref_stats, (ptg.name, beta)
    assert fast_alloc.beta == ref_alloc.beta


@pytest.fixture(scope="module", params=["lille", "sophia"])
def platform(request):
    return grid5000.site(request.param)


class TestGoldenRandomBatch:
    """~50 seeded random PTGs x 4 procedures x several betas."""

    @pytest.mark.parametrize("seed", range(16))
    @pytest.mark.parametrize("name,constraint,kwargs", PROCEDURES, ids=lambda p: None)
    def test_small_random_bit_identical(self, seed, name, constraint, kwargs):
        # 3 PTGs of 10/20 tasks per seed (48 graphs overall), alternating
        # between two platforms to keep the suite fast
        batch_platform = grid5000.site("lille" if seed % 2 else "sophia")
        ptgs = make_workload(
            WorkloadSpec(family="random", n_ptgs=3, seed=seed, max_tasks=20)
        )
        for ptg in ptgs:
            for beta in (0.25, 1.0):
                assert_identical_runs(ptg, batch_platform, beta, constraint, **kwargs)

    @pytest.mark.parametrize("seed", [100, 101])
    def test_full_size_random_bit_identical(self, platform, seed):
        # full paper sizes (10/20/50 tasks) on every procedure
        ptgs = make_workload(WorkloadSpec(family="random", n_ptgs=3, seed=seed))
        for ptg in ptgs:
            for _, constraint, kwargs in PROCEDURES:
                assert_identical_runs(ptg, platform, 0.6, constraint, **kwargs)

    def test_large_graph_vectorized_dp_bit_identical(self):
        # a graph past SMALL_GRAPH_CUTOFF exercises the vectorized
        # level-batched DP branch of AllocationState (including the
        # incremental NumPy duration sync), which the paper-sized
        # workloads above never reach
        platform = grid5000.lille()
        reference = ReferenceCluster.of(platform)
        ptg = generate_random_ptg(42, RandomPTGConfig(n_tasks=550))
        ptg.ensure_single_entry_exit()
        assert ptg.n_tasks >= SMALL_GRAPH_CUTOFF
        state = AllocationState(
            ptg, reference, cap=reference.max_allocation(platform)
        )
        assert state._vector_dp, "large graph must take the vectorized DP path"
        for constraint in (
            lambda beta, power: NoConstraint(),
            AreaConstraint,
            LevelConstraint,
        ):
            assert_identical_runs(ptg, platform, 0.5, constraint)


class TestGoldenFamilies:
    """The structured fig4/fig5 application families."""

    @pytest.mark.parametrize("family", ["fft", "strassen"])
    @pytest.mark.parametrize("name,constraint,kwargs", PROCEDURES, ids=lambda p: None)
    def test_family_bit_identical(self, family, name, constraint, kwargs):
        family_platform = grid5000.site("lille" if family == "fft" else "sophia")
        ptgs = make_workload(WorkloadSpec(family=family, n_ptgs=2, seed=3))
        for ptg in ptgs:
            for beta in (0.3, 1.0):
                assert_identical_runs(ptg, family_platform, beta, constraint, **kwargs)


class TestGoldenAllocators:
    """The public allocator classes ride the fast loop and stay golden."""

    def test_cpa_single_cluster(self):
        platform = single_cluster_platform(32, 4.0)
        reference = ReferenceCluster.of(platform)
        ptgs = make_workload(WorkloadSpec(family="random", n_ptgs=2, seed=5))
        for ptg in ptgs:
            fast = CPAAllocator().allocate(ptg, platform)
            ref_alloc, _ = run_reference_allocation(
                ptg, platform, reference, 1.0, NoConstraint()
            )
            assert fast.as_dict() == ref_alloc.as_dict()

    @pytest.mark.parametrize("threshold", [0.0, 0.5])
    def test_hcpa(self, platform, threshold):
        reference = ReferenceCluster.of(platform)
        ptgs = make_workload(WorkloadSpec(family="random", n_ptgs=2, seed=6))
        for ptg in ptgs:
            fast = HCPAAllocator(efficiency_threshold=threshold).allocate(ptg, platform)
            ref_alloc, _ = run_reference_allocation(
                ptg, platform, reference, 1.0, NoConstraint(),
                efficiency_threshold=threshold,
            )
            assert fast.as_dict() == ref_alloc.as_dict()

    @pytest.mark.parametrize("allocator_cls,constraint", [
        (ScrapAllocator, AreaConstraint),
        (ScrapMaxAllocator, LevelConstraint),
    ], ids=["scrap", "scrap-max"])
    def test_scrap_variants(self, platform, allocator_cls, constraint):
        reference = ReferenceCluster.of(platform)
        ptgs = make_workload(WorkloadSpec(family="random", n_ptgs=2, seed=7))
        for ptg in ptgs:
            for beta in (0.3, 1.0):
                allocator = allocator_cls()
                fast = allocator.allocate(ptg, platform, beta=beta)
                ref_alloc, ref_stats = run_reference_allocation(
                    ptg, platform, reference, beta,
                    constraint(beta, platform.total_power_gflops),
                )
                assert fast.as_dict() == ref_alloc.as_dict()
                assert allocator.last_stats == ref_stats


class TestGoldenCustomConstraint:
    """Custom ConstraintCheck subclasses take the mirrored-dict path."""

    class _CapAtFour(ConstraintCheck):
        stop_on_violation = False

        def violated(self, allocation, task):
            """Freeze any task that tries to grow past four processors."""
            return allocation.processors(task.task_id) > 4

    def test_custom_constraint_bit_identical(self, platform):
        ptg = make_workload(WorkloadSpec(family="random", n_ptgs=1, seed=11))[0]
        reference = ReferenceCluster.of(platform)
        fast_alloc, fast_stats = run_iterative_allocation(
            ptg, platform, reference, 1.0, self._CapAtFour()
        )
        ref_alloc, ref_stats = run_reference_allocation(
            ptg, platform, reference, 1.0, self._CapAtFour()
        )
        assert fast_alloc.as_dict() == ref_alloc.as_dict()
        assert fast_stats == ref_stats
        assert max(fast_alloc.as_dict().values()) <= 4
