"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_series, format_table, series_from_records


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]], float_fmt=".2f")
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.50" in text and "0.25" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_column_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_alignment_width(self):
        text = format_table(["name", "v"], [["a-very-long-name", 1]])
        header, _, row = text.splitlines()
        assert len(header) >= len("a-very-long-name")


class TestFormatSeries:
    def test_basic(self):
        text = format_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [1.0, 2.0]})
        assert "s1" in text and "s2" in text
        assert text.count("\n") >= 3

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"s1": [0.1]})


class TestSeriesFromRecords:
    def test_pivot(self):
        records = [
            {"n": 2, "strategy": "S", "value": 1.0},
            {"n": 4, "strategy": "S", "value": 2.0},
            {"n": 2, "strategy": "ES", "value": 3.0},
            {"n": 4, "strategy": "ES", "value": 4.0},
        ]
        series = series_from_records(records, "n", "strategy", "value")
        assert series == {"ES": [3.0, 4.0], "S": [1.0, 2.0]}

    def test_missing_combination_raises(self):
        records = [
            {"n": 2, "strategy": "S", "value": 1.0},
            {"n": 4, "strategy": "ES", "value": 4.0},
        ]
        with pytest.raises(KeyError):
            series_from_records(records, "n", "strategy", "value")
