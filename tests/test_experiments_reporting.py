"""Tests for the experiment reporting helpers not covered elsewhere."""

import pytest

from repro.experiments.mu_sweep import MuSweepResult
from repro.experiments.reporting import render_mu_sweep
from repro.exceptions import ConfigurationError
from repro.metrics.makespan import relative_makespans
from repro.utils.tables import format_series


class TestMuSweepResult:
    def make_result(self):
        return MuSweepResult(
            characteristic="work",
            family="random",
            mu_values=[0.0, 0.5, 1.0],
            ptg_counts=[2, 4],
            unfairness={2: [0.4, 0.29, 0.28], 4: [1.0, 0.58, 0.55]},
            average_makespan={2: [100.0, 110.0, 130.0], 4: [200.0, 215.0, 260.0]},
        )

    def test_recommended_mu_is_the_knee(self):
        result = self.make_result()
        # the knee is the smallest mu whose unfairness is within 10% of the
        # series' spread above the best value: mu = 0.5 for both series
        assert result.recommended_mu() == pytest.approx(0.5)

    def test_recommended_mu_single_count(self):
        result = self.make_result()
        assert result.recommended_mu(n_ptgs=4) == pytest.approx(0.5)

    def test_flat_series_recommends_smallest_mu(self):
        result = MuSweepResult(
            characteristic="cp",
            family="fft",
            mu_values=[0.0, 0.5, 1.0],
            ptg_counts=[2],
            unfairness={2: [0.3, 0.3, 0.3]},
            average_makespan={2: [1.0, 1.0, 1.0]},
        )
        assert result.recommended_mu() == 0.0

    def test_render(self):
        text = render_mu_sweep(self.make_result())
        assert "unfairness vs mu" in text
        assert "average makespan vs mu" in text
        assert "2 PTGs" in text and "4 PTGs" in text


class TestRenderingConsistency:
    def test_relative_makespan_rows_render(self):
        rel = relative_makespans({"S": 20.0, "ES": 10.0})
        text = format_series("#PTGs", [4], {name: [value] for name, value in rel.items()})
        assert "S" in text and "ES" in text
        assert "2.000" in text and "1.000" in text

    def test_series_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"a": [1.0]})
