"""Tests for the columnar store backend and streaming aggregation."""

import json

import pytest

from repro.campaigns.aggregate import StreamingAggregate, summarize_store
from repro.campaigns.colstore import (
    COLSTORE_FORMAT_VERSION,
    ColumnStore,
    Segment,
    merge_payload,
    split_payload,
)
from repro.campaigns.shards import make_shards
from repro.campaigns.store import CampaignStore
from repro.exceptions import CampaignError
from repro.exec.serial import SerialExecutor
from repro.experiments.runner import CampaignConfig, CampaignResult


def payload(i, n_ptgs=2):
    """A synthetic experiment-like payload with mixed leaf types."""
    return {
        "platform": f"site-{i % 3}",
        "n_ptgs": n_ptgs,
        "flags": [True, i, "tag", 0.5 * i],
        "comment": None,
        "own_makespans": {f"app{j}": 1.0 + i * 0.001 + j for j in range(3)},
        "outcomes": {
            "S": {"unfairness": 0.01 * i, "batch_makespan": 100.0 + i,
                  "mean_application_makespan": 50.0 + 0.5 * i},
        },
    }


def fill(store, count, channel="results"):
    payloads = {}
    for i in range(count):
        key = f"key{i:04d}"
        store.append_payload(channel, key, payload(i))
        payloads[key] = payload(i)
    return payloads


class TestSplitMerge:
    def test_floats_move_to_leaves(self):
        skeleton, leaves = split_payload({"a": 1.5, "b": {"c": 2.5}})
        assert skeleton == {"a": None, "b": {"c": None}}
        assert dict(leaves) == {("a",): 1.5, ("b", "c"): 2.5}

    def test_non_floats_stay_in_the_skeleton(self):
        source = {"i": 7, "s": "x", "t": True, "f": False, "n": None, "l": []}
        skeleton, leaves = split_payload(source)
        assert skeleton == source
        assert leaves == []

    def test_floats_inside_lists(self):
        skeleton, leaves = split_payload({"l": [1, 2.5, "x", [3.5]]})
        assert skeleton == {"l": [1, None, "x", [None]]}
        assert dict(leaves) == {("l", 1): 2.5, ("l", 3, 0): 3.5}

    def test_merge_restores_the_original(self):
        source = payload(7)
        skeleton, leaves = split_payload(source)
        assert merge_payload(skeleton, leaves) == source

    def test_genuine_none_survives_the_round_trip(self):
        source = {"x": None, "y": 1.5}
        skeleton, leaves = split_payload(source)
        restored = merge_payload(skeleton, leaves)
        assert restored["x"] is None
        assert restored["y"] == 1.5

    def test_scalar_float_payload(self):
        skeleton, leaves = split_payload(3.25)
        assert skeleton is None
        assert merge_payload(skeleton, leaves) == 3.25


class TestCompaction:
    def test_round_trip_is_bit_identical(self, tmp_path):
        store = CampaignStore(tmp_path)
        payloads = fill(store, 23)
        view = ColumnStore(store)
        report = view.compact(batch_size=10)
        assert report["rows_compacted"] == 23
        assert report["segments_written"] == 3
        assert view.rows_by_key() == payloads

    def test_wal_tail_is_merged_after_compaction(self, tmp_path):
        store = CampaignStore(tmp_path)
        payloads = fill(store, 5)
        ColumnStore(store).compact()
        store.append_payload("results", "tail-key", payload(99))
        payloads["tail-key"] = payload(99)
        assert ColumnStore(store).rows_by_key() == payloads

    def test_compaction_is_idempotent(self, tmp_path):
        store = CampaignStore(tmp_path)
        payloads = fill(store, 8)
        view = ColumnStore(store)
        view.compact()
        again = view.compact()
        assert again["rows_compacted"] == 0
        assert again["segments_written"] == 0
        assert view.rows_by_key() == payloads

    def test_last_record_wins_across_segments_and_wal(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append_payload("results", "k", {"v": 1.0})
        store.append_payload("results", "k", {"v": 2.0})
        view = ColumnStore(store)
        view.compact(batch_size=1)  # the duplicates land in separate segments
        assert view.rows_by_key() == {"k": {"v": 2.0}}
        store.append_payload("results", "k", {"v": 3.0})
        assert view.rows_by_key() == {"k": {"v": 3.0}}

    def test_partial_trailing_line_is_never_consumed(self, tmp_path):
        store = CampaignStore(tmp_path)
        payloads = fill(store, 3)
        with open(store.channel_path("results"), "a", encoding="utf-8") as fh:
            fh.write('{"format_version": 2, "key": "torn"')  # no newline
        view = ColumnStore(store)
        view.compact()
        assert view.completed_keys() == set(payloads)
        # the next append repairs the line; the torn record stays skipped
        store.append_payload("results", "after", payload(50))
        view.compact()
        assert "torn" not in view.completed_keys()
        assert "after" in view.completed_keys()

    def test_max_batches_bounds_one_invocation(self, tmp_path):
        store = CampaignStore(tmp_path)
        fill(store, 10)
        view = ColumnStore(store)
        first = view.compact(batch_size=3, max_batches=1)
        assert first["segments_written"] == 1
        assert first["rows_compacted"] == 3
        rest = view.compact(batch_size=3)
        assert rest["rows_compacted"] == 7
        assert len(view.load_state()["segments"]) == 4

    def test_state_commits_after_every_batch(self, tmp_path):
        """An interrupted compaction resumes from the last committed batch."""
        store = CampaignStore(tmp_path)
        payloads = fill(store, 9)
        view = ColumnStore(store)
        view.compact(batch_size=4, max_batches=1)  # "crash" after one batch
        state = view.load_state()
        assert len(state["segments"]) == 1
        assert state["wal_offset"] > 0
        # a fresh view (fresh process) finishes the job without re-reading
        resumed = ColumnStore(CampaignStore(tmp_path))
        resumed.compact(batch_size=4)
        assert resumed.rows_by_key() == payloads

    def test_invalid_batch_size_is_refused(self, tmp_path):
        with pytest.raises(CampaignError, match="batch_size"):
            ColumnStore(CampaignStore(tmp_path)).compact(batch_size=0)

    def test_unsupported_state_version_is_refused(self, tmp_path):
        store = CampaignStore(tmp_path)
        fill(store, 2)
        view = ColumnStore(store)
        view.compact()
        state = view.load_state()
        state["format_version"] = 99
        view.state_path.write_text(json.dumps(state), encoding="utf-8")
        with pytest.raises(CampaignError, match="unsupported colstore format"):
            ColumnStore(store).load_state()

    def test_non_results_channels_compact_into_their_own_tree(self, tmp_path):
        store = CampaignStore(tmp_path)
        fill(store, 4, channel="stream")
        view = ColumnStore(store, channel="stream")
        view.compact()
        assert view.root != ColumnStore(store).root
        assert len(view.rows_by_key()) == 4


class TestSegment:
    def test_footer_keys_need_no_column_io(self, tmp_path):
        store = CampaignStore(tmp_path)
        fill(store, 6)
        view = ColumnStore(store)
        view.compact(batch_size=6)
        [segment] = view.segments()
        assert segment.rows == 6
        assert segment.keys() == [f"key{i:04d}" for i in range(6)]

    def test_segment_version_is_checked(self, tmp_path):
        store = CampaignStore(tmp_path)
        fill(store, 2)
        view = ColumnStore(store)
        view.compact()
        name = view.load_state()["segments"][0]
        footer_path = view.segments_dir / name / "footer.json"
        footer = json.loads(footer_path.read_text(encoding="utf-8"))
        footer["format_version"] = 99
        footer_path.write_text(json.dumps(footer), encoding="utf-8")
        with pytest.raises(CampaignError, match="unsupported segment format"):
            Segment(view.segments_dir / name)

    def test_format_version_constant(self):
        assert COLSTORE_FORMAT_VERSION == 1


class TestStoreIntegration:
    def test_store_reads_prefer_segments_after_compaction(self, tmp_path):
        """CampaignStore.results_by_key round-trips through the segments."""
        config = CampaignConfig(ptg_counts=(2,), workloads_per_point=2,
                                base_seed=3, max_tasks=14)
        shards = make_shards(config)
        store = CampaignStore(tmp_path)
        expected = {}
        for outcome in SerialExecutor().submit_shards(shards):
            store.append(outcome.key, outcome.result)
            expected[outcome.key] = outcome.result
        before = store.results_by_key()
        ColumnStore(store).compact(batch_size=3)
        after = CampaignStore(tmp_path).results_by_key()
        assert after == before == expected

    def test_completed_keys_uses_the_footer_index(self, tmp_path):
        store = CampaignStore(tmp_path)
        payloads = fill(store, 12)
        ColumnStore(store).compact(batch_size=5)
        fresh = CampaignStore(tmp_path)
        assert fresh.completed_keys() == set(payloads)


class TestStreamingAggregation:
    def test_matches_campaign_result_bit_for_bit(self, tmp_path):
        config = CampaignConfig(ptg_counts=(2, 4), workloads_per_point=2,
                                base_seed=3, max_tasks=14)
        shards = make_shards(config)
        store = CampaignStore(tmp_path)
        experiments = []
        for outcome in SerialExecutor().submit_shards(shards):
            store.append(outcome.key, outcome.result)
            experiments.append(outcome.result)
        reference = CampaignResult(config=config, experiments=experiments)
        for compact in (False, True):
            if compact:
                ColumnStore(store).compact(batch_size=3)
            summary = summarize_store(CampaignStore(tmp_path))
            assert summary["experiments"] == len(shards)
            assert summary["average_unfairness"] == reference.average_unfairness()
            assert summary["average_relative_makespan"] == (
                reference.average_relative_makespan()
            )
            assert summary["average_mean_application_makespan"] == (
                reference.average_mean_application_makespan()
            )

    def test_duplicate_keys_keep_last_record_wins(self, tmp_path):
        store = CampaignStore(tmp_path)
        first = payload(1)
        second = payload(2)
        store.append_payload("results", "k", first)
        store.append_payload("results", "k", second)
        summary = summarize_store(store)
        assert summary["experiments"] == 1
        expected = StreamingAggregate()
        expected.add(second)
        assert summary == expected.summary()

    def test_mismatched_strategy_sets_are_refused(self):
        aggregate = StreamingAggregate()
        aggregate.add(payload(1))
        bad = payload(2)
        bad["outcomes"]["EXTRA"] = bad["outcomes"]["S"]
        with pytest.raises(CampaignError, match="same strategies"):
            aggregate.add(bad)

    def test_malformed_payload_is_refused(self):
        with pytest.raises(CampaignError, match="misses"):
            StreamingAggregate().add({"no": "fields"})
