"""Tests for the discrete-event engine."""

import pytest

from repro.exceptions import SimulationError
from repro.simulate.engine import SimulationEngine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        log = []
        engine.schedule(2.0, lambda: log.append("b"))
        engine.schedule(1.0, lambda: log.append("a"))
        engine.schedule(3.0, lambda: log.append("c"))
        engine.run()
        assert log == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_ties_run_in_schedule_order(self):
        engine = SimulationEngine()
        log = []
        engine.schedule(1.0, lambda: log.append(1))
        engine.schedule(1.0, lambda: log.append(2))
        engine.run()
        assert log == [1, 2]

    def test_schedule_after(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, lambda: engine.schedule_after(0.5, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [1.5]

    def test_arguments_passed(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, seen.append, "x")
        engine.run()
        assert seen == ["x"]

    def test_past_event_rejected(self):
        engine = SimulationEngine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        log = []
        handle = engine.schedule(1.0, lambda: log.append("no"))
        engine.schedule(2.0, lambda: log.append("yes"))
        handle.cancel()
        engine.run()
        assert log == ["yes"]

    def test_peek_skips_cancelled(self):
        engine = SimulationEngine()
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        handle.cancel()
        assert engine.peek_time() == 2.0

    def test_peek_empty(self):
        assert SimulationEngine().peek_time() is None


class TestRunControl:
    def test_run_until(self):
        engine = SimulationEngine()
        log = []
        engine.schedule(1.0, lambda: log.append(1))
        engine.schedule(10.0, lambda: log.append(10))
        engine.run(until=5.0)
        assert log == [1]
        assert engine.now == 5.0

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False

    def test_event_count(self):
        engine = SimulationEngine()
        for t in range(5):
            engine.schedule(float(t), lambda: None)
        engine.run()
        assert engine.processed_events == 5

    def test_livelock_guard(self):
        engine = SimulationEngine()

        def reschedule():
            engine.schedule_after(0.0, reschedule)

        engine.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=1000)
