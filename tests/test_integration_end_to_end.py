"""End-to-end integration tests reproducing the paper's qualitative claims
on small workloads.

These tests exercise the whole pipeline (generation -> constraint ->
allocation -> mapping -> simulation -> metrics) exactly as the experiment
harness does, but at a scale that keeps the test suite fast.  They check
*robust* qualitative properties rather than exact numbers.
"""

import pytest

from repro.constraints.registry import strategy
from repro.experiments.runner import compute_own_makespans, run_experiment
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.metrics.fairness import slowdowns, unfairness
from repro.platform import grid5000
from repro.platform.builder import heterogeneous_platform
from repro.scheduler.concurrent import ConcurrentScheduler
from repro.simulate.executor import ScheduleExecutor


@pytest.fixture(scope="module")
def platform():
    return grid5000.lille()


@pytest.fixture(scope="module")
def workload():
    return make_workload(WorkloadSpec("random", n_ptgs=4, seed=21, max_tasks=20))


@pytest.fixture(scope="module")
def experiment(platform, workload):
    strategies = [strategy(name) for name in ("S", "ES", "PS-work", "WPS-width", "WPS-work")]
    return run_experiment(workload, platform, strategies, workload_label="integration")


class TestPipeline:
    def test_every_strategy_produces_measured_makespans(self, experiment, workload):
        for outcome in experiment.outcomes.values():
            assert set(outcome.makespans) == {p.name for p in workload}
            assert all(v > 0 for v in outcome.makespans.values())

    def test_concurrent_makespans_not_better_than_dedicated_on_average(
        self, experiment, workload
    ):
        """Sharing the platform cannot speed up the average application much."""
        own_mean = sum(experiment.own_makespans.values()) / len(workload)
        for outcome in experiment.outcomes.values():
            multi_mean = sum(outcome.makespans.values()) / len(workload)
            assert multi_mean >= own_mean * 0.8

    def test_constrained_strategies_beat_selfish_batch_makespan(self, experiment):
        """Paper Figure 3 (right): with several PTGs the selfish strategy
        produces longer batches than the constrained ones."""
        selfish = experiment.outcomes["S"].batch_makespan
        constrained_best = min(
            experiment.outcomes[name].batch_makespan
            for name in ("ES", "PS-work", "WPS-width", "WPS-work")
        )
        assert constrained_best <= selfish * 1.05

    def test_unfairness_non_negative_and_finite(self, experiment):
        for outcome in experiment.outcomes.values():
            assert 0 <= outcome.unfairness < 2 * len(outcome.slowdowns)

    def test_betas_reflect_strategy_definitions(self, experiment, workload):
        assert all(b == 1.0 for b in experiment.outcomes["S"].betas.values())
        n = len(workload)
        assert all(
            b == pytest.approx(1.0 / n)
            for b in experiment.outcomes["ES"].betas.values()
        )
        ps = experiment.outcomes["PS-work"].betas
        assert sum(ps.values()) == pytest.approx(1.0, rel=1e-3)


class TestFairnessMechanism:
    def test_equal_share_helps_a_small_application(self):
        """A tiny application competing with heavy ones is served earlier
        under ES than under the selfish strategy."""
        platform = heterogeneous_platform((24, 24), (3.0, 4.0), name="fair")
        heavy = make_workload(WorkloadSpec("random", n_ptgs=3, seed=5, max_tasks=50))
        small = make_workload(WorkloadSpec("random", n_ptgs=1, seed=17, max_tasks=10))[0]
        workload = heavy + [small]

        results = {}
        executor = ScheduleExecutor(platform)
        for name in ("S", "ES"):
            planned = ConcurrentScheduler(strategy(name)).schedule(workload, platform)
            report = executor.execute(workload, planned.schedule)
            results[name] = report.makespan(small.name)
        assert results["ES"] <= results["S"] * 1.1

    def test_slowdown_definition_matches_metrics_module(self, experiment, workload):
        outcome = experiment.outcomes["ES"]
        recomputed = slowdowns(experiment.own_makespans, outcome.makespans)
        assert recomputed == pytest.approx(outcome.slowdowns)
        assert unfairness(recomputed) == pytest.approx(outcome.unfairness)


class TestCrossPlatformConsistency:
    @pytest.mark.parametrize("site", ["nancy", "sophia"])
    def test_pipeline_runs_on_other_sites(self, site, workload):
        platform = grid5000.site(site)
        result = run_experiment(
            workload, platform, [strategy("WPS-work")], workload_label=site
        )
        outcome = result.outcomes["WPS-work"]
        assert all(v > 0 for v in outcome.makespans.values())
        assert outcome.unfairness >= 0
