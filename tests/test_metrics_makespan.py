"""Tests for the relative-makespan metrics."""

import pytest

from repro.exceptions import ConfigurationError
from repro.metrics.makespan import (
    average_makespan,
    average_relative_makespan,
    best_makespan,
    relative_makespans,
)


class TestBestMakespan:
    def test_minimum(self):
        assert best_makespan({"a": 3.0, "b": 2.0}) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            best_makespan({})

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigurationError):
            best_makespan({"a": 0.0})


class TestRelativeMakespans:
    def test_best_is_one(self):
        rel = relative_makespans({"a": 10.0, "b": 20.0, "c": 15.0})
        assert rel["a"] == pytest.approx(1.0)
        assert rel["b"] == pytest.approx(2.0)
        assert all(v >= 1.0 for v in rel.values())


class TestAverageRelativeMakespan:
    def test_two_experiments(self):
        exp1 = {"S": 10.0, "ES": 20.0}
        exp2 = {"S": 40.0, "ES": 20.0}
        avg = average_relative_makespan([exp1, exp2])
        assert avg["S"] == pytest.approx((1.0 + 2.0) / 2)
        assert avg["ES"] == pytest.approx((2.0 + 1.0) / 2)

    def test_extreme_values_not_smoothed(self):
        """The paper's motivation: relative values keep extreme experiments visible."""
        exp1 = {"S": 1.0, "ES": 1.0}
        exp2 = {"S": 1000.0, "ES": 1.0}
        avg = average_relative_makespan([exp1, exp2])
        assert avg["S"] > 100

    def test_mismatched_strategies_rejected(self):
        with pytest.raises(ConfigurationError):
            average_relative_makespan([{"S": 1.0}, {"ES": 1.0}])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            average_relative_makespan([])


class TestAverageMakespan:
    def test_plain_average(self):
        avg = average_makespan([{"x": 10.0}, {"x": 20.0}])
        assert avg["x"] == pytest.approx(15.0)

    def test_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            average_makespan([{"x": 1.0}, {"y": 1.0}])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            average_makespan([])
