"""Tests for the global-ordering baseline mapper."""

import pytest

from repro.allocation.scrap import ScrapMaxAllocator
from repro.exceptions import MappingError
from repro.mapping.base import AllocatedPTG
from repro.mapping.global_order import GlobalOrderMapper

from tests.conftest import make_chain_ptg, make_fork_join_ptg


def allocate(ptg, platform, beta=1.0):
    return AllocatedPTG(ptg, ScrapMaxAllocator().allocate(ptg, platform, beta=beta))


class TestGlobalOrderMapper:
    def test_single_application(self, small_platform, small_random_ptg):
        schedule = GlobalOrderMapper().map(
            [allocate(small_random_ptg, small_platform)], small_platform
        )
        assert len(schedule) == small_random_ptg.n_tasks
        schedule.validate_no_overlap()
        schedule.validate_precedences([small_random_ptg])

    def test_concurrent_applications_consistent(self, medium_platform, random_workload):
        allocated = [allocate(p, medium_platform, beta=1 / 3) for p in random_workload]
        schedule = GlobalOrderMapper().map(allocated, medium_platform)
        schedule.validate_no_overlap()
        schedule.validate_precedences(random_workload)
        for ptg in random_workload:
            assert len(schedule.entries_of(ptg.name)) == ptg.n_tasks

    def test_big_application_prioritised(self, medium_platform):
        """Global ordering lets the large application's tasks go first."""
        big = make_chain_ptg("big", n=6, flops=200e9)
        small = make_chain_ptg("small", n=2, flops=5e9)
        allocated = [
            allocate(big, medium_platform, beta=0.5),
            allocate(small, medium_platform, beta=0.5),
        ]
        schedule = GlobalOrderMapper().map(allocated, medium_platform)
        # bottom level of the big application's entry dominates, so it is
        # considered for mapping before the small application's entry
        assert schedule.entry("big", 0).start <= schedule.entry("small", 0).start + 1e-9

    def test_empty_input_rejected(self, medium_platform):
        with pytest.raises(MappingError):
            GlobalOrderMapper().map([], medium_platform)

    def test_identical_results_are_deterministic(self, medium_platform, random_workload):
        allocated = [allocate(p, medium_platform, beta=0.5) for p in random_workload]
        s1 = GlobalOrderMapper().map(allocated, medium_platform)
        s2 = GlobalOrderMapper().map(allocated, medium_platform)
        for entry in s1:
            other = s2.entry(entry.ptg_name, entry.task_id)
            assert other.start == entry.start
            assert other.cluster_name == entry.cluster_name
