"""Tests for repro.platform.network."""

import pytest

from repro.exceptions import InvalidPlatformError
from repro.platform.network import (
    DEFAULT_LATENCY,
    DEFAULT_LINK_BANDWIDTH,
    DEFAULT_SWITCH_BANDWIDTH,
    NetworkLink,
    NetworkTopology,
    Switch,
)


class TestSwitchAndLink:
    def test_switch_defaults(self):
        s = Switch("sw")
        assert s.bandwidth == DEFAULT_SWITCH_BANDWIDTH
        assert s.latency == DEFAULT_LATENCY

    def test_switch_invalid(self):
        with pytest.raises(InvalidPlatformError):
            Switch("")
        with pytest.raises(InvalidPlatformError):
            Switch("sw", bandwidth=0)
        with pytest.raises(InvalidPlatformError):
            Switch("sw", latency=-1)

    def test_link_invalid(self):
        with pytest.raises(InvalidPlatformError):
            NetworkLink("l", bandwidth=0)
        with pytest.raises(InvalidPlatformError):
            NetworkLink("l", latency=-0.1)


class TestSharedSwitchTopology:
    def test_all_clusters_on_one_switch(self):
        topo = NetworkTopology.shared_switch(["a", "b", "c"], switch_name="sw")
        assert topo.switch_names() == ["sw"]
        assert topo.shares_switch("a", "b")
        assert topo.clusters_on("sw") == ["a", "b", "c"]

    def test_route_single_switch(self):
        topo = NetworkTopology.shared_switch(["a", "b"])
        assert len(topo.route("a", "b")) == 1
        assert len(topo.route("a", "a")) == 1

    def test_hop_counts(self):
        topo = NetworkTopology.shared_switch(["a", "b"])
        assert topo.hop_count("a", "a") == 2
        assert topo.hop_count("a", "b") == 2

    def test_needs_a_cluster(self):
        with pytest.raises(InvalidPlatformError):
            NetworkTopology.shared_switch([])


class TestPerClusterSwitchTopology:
    def test_one_switch_per_cluster(self):
        topo = NetworkTopology.per_cluster_switch(["a", "b"])
        assert len(topo.switch_names()) == 2
        assert not topo.shares_switch("a", "b")

    def test_route_crosses_two_switches(self):
        topo = NetworkTopology.per_cluster_switch(["a", "b"])
        assert len(topo.route("a", "b")) == 2
        assert topo.hop_count("a", "b") == 3

    def test_path_latency_larger_than_shared(self):
        shared = NetworkTopology.shared_switch(["a", "b"])
        split = NetworkTopology.per_cluster_switch(["a", "b"])
        assert split.path_latency("a", "b") > shared.path_latency("a", "b")


class TestBandwidthQueries:
    def test_path_bandwidth_is_single_node_bottleneck(self):
        topo = NetworkTopology.shared_switch(["a", "b"])
        assert topo.path_bandwidth("a", "b") == min(
            DEFAULT_LINK_BANDWIDTH, DEFAULT_SWITCH_BANDWIDTH
        )

    def test_cluster_access_bandwidth_scales_with_nodes(self):
        topo = NetworkTopology.shared_switch(["a"])
        assert topo.cluster_access_bandwidth(10) == 10 * DEFAULT_LINK_BANDWIDTH
        with pytest.raises(InvalidPlatformError):
            topo.cluster_access_bandwidth(0)

    def test_route_bandwidth_capped_by_switch(self):
        topo = NetworkTopology.shared_switch(["a", "b"])
        bw = topo.route_bandwidth("a", "b", 1000, 1000)
        assert bw == DEFAULT_SWITCH_BANDWIDTH

    def test_route_bandwidth_capped_by_small_nic_pool(self):
        topo = NetworkTopology.shared_switch(["a", "b"])
        bw = topo.route_bandwidth("a", "b", 2, 1000)
        assert bw == 2 * DEFAULT_LINK_BANDWIDTH


class TestValidation:
    def test_unknown_switch_attachment(self):
        with pytest.raises(InvalidPlatformError):
            NetworkTopology(switches=[Switch("sw")], attachment={"a": "other"})

    def test_duplicate_switch_names(self):
        with pytest.raises(InvalidPlatformError):
            NetworkTopology(
                switches=[Switch("sw"), Switch("sw")], attachment={"a": "sw"}
            )

    def test_unknown_cluster_queries(self):
        topo = NetworkTopology.shared_switch(["a"])
        with pytest.raises(InvalidPlatformError):
            topo.switch_of("zzz")
        with pytest.raises(InvalidPlatformError):
            topo.switch("zzz")

    def test_no_switch_rejected(self):
        with pytest.raises(InvalidPlatformError):
            NetworkTopology(switches=[], attachment={})
