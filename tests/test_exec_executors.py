"""Executor-equivalence and work-stealing tests for repro.exec.

The golden guarantee under test: the *same* campaign config produces
bit-identical aggregates and identical store keys whichever executor
fans the shards out -- serial, process-pool, or local-cluster with a
forced lease steal in the middle.
"""

import pytest

from repro import obs
from repro.campaigns.shards import make_shards
from repro.campaigns.store import CampaignStore
from repro.exceptions import ConfigurationError
from repro.exec import EXECUTORS
from repro.exec.base import DEFAULT_POLICY, ExecutionPolicy, Executor
from repro.exec.cluster import LocalClusterExecutor
from repro.exec.procpool import ProcessPoolExecutor
from repro.exec.serial import SerialExecutor
from repro.experiments.runner import CampaignConfig
from repro.obs import TelemetrySpec


TINY = CampaignConfig(ptg_counts=(2,), workloads_per_point=2, base_seed=3,
                      max_tasks=14)

#: A fast lease policy for the cluster tests: quick staleness detection,
#: quick polling, so a forced steal resolves in about a second.
FAST_LEASES = ExecutionPolicy(lease_timeout=1.0, heartbeat_interval=0.2,
                              poll_interval=0.05)


@pytest.fixture(scope="module")
def tiny_shards():
    return make_shards(TINY)


@pytest.fixture(scope="module")
def serial_outcomes(tiny_shards):
    return {o.key: o for o in SerialExecutor().submit_shards(tiny_shards)}


class TestRegistry:
    def test_executors_are_registered(self):
        assert EXECUTORS.names() == ["serial", "process-pool", "local-cluster"]

    def test_create_builds_instances(self):
        assert isinstance(EXECUTORS.create("serial"), SerialExecutor)
        assert isinstance(EXECUTORS.create("process-pool"), ProcessPoolExecutor)
        assert isinstance(EXECUTORS.create("LOCAL-CLUSTER"), LocalClusterExecutor)

    def test_every_executor_satisfies_the_protocol(self):
        for name in EXECUTORS.names():
            assert isinstance(EXECUTORS.create(name), Executor)

    def test_unknown_executor_is_refused(self):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            EXECUTORS.create("slurm")


class TestExecutionPolicy:
    def test_defaults(self):
        assert DEFAULT_POLICY.jobs is None
        assert DEFAULT_POLICY.lease_timeout == 5.0
        assert DEFAULT_POLICY.max_lease_attempts == 5

    def test_effective_heartbeat_defaults_to_a_fifth_of_the_timeout(self):
        assert ExecutionPolicy(lease_timeout=10.0).effective_heartbeat() == 2.0
        assert ExecutionPolicy(heartbeat_interval=0.5).effective_heartbeat() == 0.5

    @pytest.mark.parametrize("kwargs", [
        {"lease_timeout": 0.0},
        {"heartbeat_interval": -1.0},
        {"poll_interval": 0.0},
        {"max_lease_attempts": 0},
    ])
    def test_invalid_values_are_refused(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(**kwargs)


class TestProcessPoolEquivalence:
    def test_bit_identical_to_serial(self, tiny_shards, serial_outcomes):
        pooled = {
            o.key: o
            for o in ProcessPoolExecutor(jobs=2).submit_shards(tiny_shards)
        }
        assert set(pooled) == set(serial_outcomes)
        for key, outcome in pooled.items():
            assert outcome.ok
            assert outcome.result == serial_outcomes[key].result

    def test_policy_jobs_override_constructor_jobs(self, tiny_shards):
        executor = ProcessPoolExecutor(jobs=64)
        outcomes = list(executor.submit_shards(
            tiny_shards[:1], policy=ExecutionPolicy(jobs=1)
        ))
        assert len(outcomes) == 1 and outcomes[0].ok


class TestLocalClusterEquivalence:
    def test_bit_identical_to_serial(self, tiny_shards, serial_outcomes):
        clustered = {
            o.key: o
            for o in LocalClusterExecutor(workers=2).submit_shards(
                tiny_shards, policy=FAST_LEASES
            )
        }
        assert set(clustered) == set(serial_outcomes)
        for key, outcome in clustered.items():
            assert outcome.ok, outcome.error
            assert outcome.result == serial_outcomes[key].result

    def test_spool_is_removed_after_the_run(self, tiny_shards, tmp_path):
        spool = tmp_path / "spool"
        executor = LocalClusterExecutor(workers=1, spool=str(spool))
        list(executor.submit_shards(tiny_shards[:1], policy=FAST_LEASES))
        assert not spool.exists()

    def test_empty_submission_spawns_nothing(self):
        executor = LocalClusterExecutor(workers=2)
        assert list(executor.submit_shards([])) == []
        assert executor.processes == []


class TestWorkStealing:
    def test_killed_worker_loses_its_shard_to_a_survivor(
        self, tiny_shards, serial_outcomes, tmp_path
    ):
        """Kill one worker after its first lease: zero lost shards.

        Fault injection makes the race deterministic: whichever worker
        w0 is, it dies (``os._exit``) immediately after *first*
        acquiring a lease, so exactly that shard must be stolen by a
        surviving worker once the heartbeat goes stale.
        """
        executor = LocalClusterExecutor(
            workers=2, faults={"w0": {"die_after_lease": "*"}}
        )
        store = CampaignStore(tmp_path / "store")
        with obs.capture(TelemetrySpec(metrics=True)) as session:
            outcomes = {
                o.key: o for o in executor.submit_shards(
                    tiny_shards, store=store, policy=FAST_LEASES
                )
            }
        # zero lost shards, bit-identical results
        assert set(outcomes) == set(serial_outcomes)
        for key, outcome in outcomes.items():
            assert outcome.ok, outcome.error
            assert outcome.result == serial_outcomes[key].result
        # the dead worker's shard was stolen, and the meters saw it
        counters = session.registry.snapshot()["counters"]
        assert counters.get("exec.steals", 0) >= 1
        assert counters.get("exec.lease_expiries", 0) >= 1
        # per-worker shard counters: only the survivor(s) completed work
        per_worker = {
            name: value for name, value in counters.items()
            if name.startswith("exec.worker.")
        }
        assert sum(per_worker.values()) == len(tiny_shards)
        assert per_worker.get("exec.worker.w0.shards", 0) == 0
        # leases were all released once the campaign completed
        assert list((store.root / "leases").glob("*.lease")) == []

    def test_all_workers_dead_falls_back_inline(self, tiny_shards):
        """Every worker dies: the collector finishes the shards itself."""
        executor = LocalClusterExecutor(
            workers=2, faults={"*": {"die_after_lease": "*"}}
        )
        with obs.capture(TelemetrySpec(metrics=True)) as session:
            outcomes = {
                o.key: o
                for o in executor.submit_shards(tiny_shards, policy=FAST_LEASES)
            }
        assert len(outcomes) == len(tiny_shards)
        assert all(o.ok for o in outcomes.values())
        counters = session.registry.snapshot()["counters"]
        assert counters.get("exec.inline_fallback", 0) >= 1

    def test_stalled_worker_is_stolen_from(self, tiny_shards, serial_outcomes):
        """A stalling (not dead) worker misses heartbeats and is robbed.

        The stolen shard may eventually be written twice -- once by the
        thief, once by the late owner -- which must stay harmless
        because shard execution is deterministic.
        """
        executor = LocalClusterExecutor(
            workers=2,
            faults={"w0": {"stall_after_lease": "*", "stall_seconds": 4.0}},
        )
        outcomes = {
            o.key: o
            for o in executor.submit_shards(tiny_shards, policy=FAST_LEASES)
        }
        assert set(outcomes) == set(serial_outcomes)
        for key, outcome in outcomes.items():
            assert outcome.ok, outcome.error
            assert outcome.result == serial_outcomes[key].result
