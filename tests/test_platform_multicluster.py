"""Tests for repro.platform.multicluster."""

import pytest

from repro.exceptions import InvalidPlatformError
from repro.platform.cluster import Cluster
from repro.platform.multicluster import MultiClusterPlatform
from repro.platform.network import NetworkTopology


def make_platform():
    return MultiClusterPlatform(
        "demo", [Cluster("a", 10, 2.0), Cluster("b", 20, 4.0), Cluster("c", 5, 3.0)]
    )


class TestConstruction:
    def test_aggregates(self):
        p = make_platform()
        assert p.total_processors == 35
        assert p.total_power_gflops == pytest.approx(10 * 2 + 20 * 4 + 5 * 3)
        assert p.max_cluster_size == 20
        assert p.min_speed_gflops == 2.0
        assert p.max_speed_gflops == 4.0

    def test_heterogeneity(self):
        p = make_platform()
        assert p.heterogeneity == pytest.approx(1.0)
        assert p.heterogeneity_percent == pytest.approx(100.0)

    def test_default_topology_is_shared_switch(self):
        p = make_platform()
        assert p.topology.shares_switch("a", "b")

    def test_container_protocol(self):
        p = make_platform()
        assert len(p) == 3
        assert "a" in p and "zzz" not in p
        assert [c.name for c in p] == ["a", "b", "c"]
        assert p.cluster_names() == ["a", "b", "c"]

    def test_cluster_lookup(self):
        p = make_platform()
        assert p.cluster("b").num_processors == 20
        with pytest.raises(InvalidPlatformError):
            p.cluster("zzz")

    def test_describe_rows(self):
        p = make_platform()
        assert p.describe()[0] == ("a", 10, 2.0)


class TestValidation:
    def test_empty_platform_rejected(self):
        with pytest.raises(InvalidPlatformError):
            MultiClusterPlatform("p", [])

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidPlatformError):
            MultiClusterPlatform("", [Cluster("a", 1, 1.0)])

    def test_duplicate_cluster_names_rejected(self):
        with pytest.raises(InvalidPlatformError):
            MultiClusterPlatform("p", [Cluster("a", 1, 1.0), Cluster("a", 2, 2.0)])

    def test_topology_must_cover_clusters(self):
        topo = NetworkTopology.shared_switch(["a"])
        with pytest.raises(InvalidPlatformError):
            MultiClusterPlatform("p", [Cluster("a", 1, 1.0), Cluster("b", 1, 1.0)], topo)
