"""Tests for campaign result persistence (JSONL store + workload archive)."""

import json

import pytest

from repro.campaigns.shards import make_shards
from repro.campaigns.store import (
    CampaignStore,
    experiment_result_from_dict,
    experiment_result_to_dict,
    strategy_outcome_from_dict,
    strategy_outcome_to_dict,
)
from repro.constraints.registry import strategy
from repro.exceptions import CampaignError
from repro.experiments.runner import CampaignConfig, run_experiment
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.platform.builder import heterogeneous_platform


@pytest.fixture(scope="module")
def platform():
    return heterogeneous_platform((10, 14), (3.0, 4.0), name="store-platform")


@pytest.fixture(scope="module")
def workload():
    return make_workload(WorkloadSpec("random", n_ptgs=2, seed=3, max_tasks=8))


@pytest.fixture(scope="module")
def result(platform, workload):
    return run_experiment(
        workload, platform, [strategy("S"), strategy("ES")], workload_label="t"
    )


class TestRecordRoundTrip:
    def test_strategy_outcome_round_trips_exactly(self, result):
        outcome = result.outcomes["ES"]
        restored = strategy_outcome_from_dict(
            json.loads(json.dumps(strategy_outcome_to_dict(outcome)))
        )
        assert restored == outcome  # dataclass equality: every float bit-exact

    def test_experiment_result_round_trips_exactly(self, result):
        restored = experiment_result_from_dict(
            json.loads(json.dumps(experiment_result_to_dict(result)))
        )
        assert restored == result

    def test_missing_field_raises(self, result):
        payload = experiment_result_to_dict(result)
        del payload["own_makespans"]
        with pytest.raises(CampaignError):
            experiment_result_from_dict(payload)


class TestCampaignStore:
    def test_append_and_reload(self, tmp_path, result, workload):
        store = CampaignStore(tmp_path / "store")
        store.append("shard-a", result, workload=workload)
        assert "shard-a" in store
        assert len(store) == 1
        reloaded = store.results_by_key()["shard-a"]
        assert reloaded == result

    def test_workload_archive_round_trips(self, tmp_path, result, workload):
        store = CampaignStore(tmp_path / "store")
        store.append("shard-a", result, workload=workload)
        restored = store.load_workload("shard-a")
        assert [g.name for g in restored] == [g.name for g in workload]
        assert [g.n_tasks for g in restored] == [g.n_tasks for g in workload]

    def test_missing_workload_raises(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        with pytest.raises(CampaignError):
            store.load_workload("absent")

    def test_append_only_accumulates(self, tmp_path, result):
        store = CampaignStore(tmp_path / "store")
        store.append("a", result)
        store.append("b", result)
        assert store.completed_keys() == {"a", "b"}
        assert [key for key, _ in store.iter_records()] == ["a", "b"]

    def test_truncated_final_line_is_ignored(self, tmp_path, result):
        """A crash mid-write must not poison the store: the shard re-runs."""
        store = CampaignStore(tmp_path / "store")
        store.append("a", result)
        with open(store.results_path, "a", encoding="utf-8") as handle:
            handle.write('{"format_version": 1, "key": "b", "result"')
        assert store.completed_keys() == {"a"}

    def test_append_after_truncated_line_keeps_store_readable(self, tmp_path, result):
        """Appending over a crash artefact must not corrupt later records."""
        store = CampaignStore(tmp_path / "store")
        store.append("a", result)
        with open(store.results_path, "a", encoding="utf-8") as handle:
            handle.write('{"format_version": 1, "key": "b", "result"')
        store.append("b", result)
        store.append("c", result)
        assert store.completed_keys() == {"a", "b", "c"}

    def test_unsupported_format_version_raises(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        with open(store.results_path, "w", encoding="utf-8") as handle:
            handle.write('{"format_version": 99, "key": "a", "result": {}}\n')
        with pytest.raises(CampaignError):
            store.completed_keys()

    def test_meta_round_trip(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        assert store.read_meta() is None
        store.write_meta({"signature": "abc", "total_shards": 4})
        assert store.read_meta() == {"signature": "abc", "total_shards": 4}

    def test_cache_round_trip(self, tmp_path):
        from repro.campaigns.cache import OwnMakespanCache

        store = CampaignStore(tmp_path / "store")
        assert len(store.load_cache()) == 0
        store.save_cache(OwnMakespanCache({"fp:plat": 2.5}))
        assert store.load_cache().entries == {"fp:plat": 2.5}

    def test_store_keys_match_shard_keys(self, tmp_path, platform, result):
        """The store accepts the content-derived keys produced by the shards."""
        config = CampaignConfig(
            family="random", ptg_counts=(2,), workloads_per_point=1,
            platforms=(platform,), strategy_names=("S", "ES"), max_tasks=8,
        )
        shard = make_shards(config)[0]
        store = CampaignStore(tmp_path / "store")
        store.append(shard.key(), result)
        assert shard.key() in store


class TestGenericChannels:
    """Crash-recovery guarantees hold on every channel, not just results."""

    @pytest.mark.parametrize("channel", ["stream", "service", "telemetry"])
    def test_truncated_trailing_line_is_skipped(self, tmp_path, channel):
        store = CampaignStore(tmp_path / "store")
        store.append_payload(channel, "a", {"v": 1})
        with open(store.channel_path(channel), "a", encoding="utf-8") as handle:
            handle.write('{"format_version": 2, "key": "torn"')
        assert [k for k, _ in store.iter_payloads(channel)] == ["a"]

    @pytest.mark.parametrize("channel", ["stream", "service", "telemetry"])
    def test_append_repairs_a_truncated_line(self, tmp_path, channel):
        store = CampaignStore(tmp_path / "store")
        store.append_payload(channel, "a", {"v": 1})
        with open(store.channel_path(channel), "a", encoding="utf-8") as handle:
            handle.write('{"format_version": 2, "key": "torn"')
        store.append_payload(channel, "b", {"v": 2})
        assert [k for k, _ in store.iter_payloads(channel)] == ["a", "b"]

    def test_two_writers_interleave_without_loss(self, tmp_path):
        """Two store instances on one root append without clobbering."""
        writer_a = CampaignStore(tmp_path / "store")
        writer_b = CampaignStore(tmp_path / "store")
        for i in range(20):
            writer_a.append_payload("stream", f"a{i}", {"writer": "a", "i": i})
            writer_b.append_payload("stream", f"b{i}", {"writer": "b", "i": i})
        seen = dict(CampaignStore(tmp_path / "store").iter_payloads("stream"))
        assert len(seen) == 40
        assert seen["a7"] == {"writer": "a", "i": 7}
        assert seen["b19"] == {"writer": "b", "i": 19}

    def test_reader_sees_the_other_writers_appends(self, tmp_path):
        """A cached reader picks up lines appended by a second instance."""
        reader = CampaignStore(tmp_path / "store")
        writer = CampaignStore(tmp_path / "store")
        writer.append_payload("stream", "a", {"v": 1})
        assert [k for k, _ in reader.iter_payloads("stream")] == ["a"]
        writer.append_payload("stream", "b", {"v": 2})
        assert [k for k, _ in reader.iter_payloads("stream")] == ["a", "b"]


class TestTailCache:
    def test_repeated_iteration_does_not_rescan(self, tmp_path, monkeypatch):
        """The second pass replays the cached records without re-parsing."""
        store = CampaignStore(tmp_path / "store")
        for i in range(5):
            store.append_payload("stream", f"k{i}", {"i": i})
        first = list(store.iter_payloads("stream"))
        calls = []
        real_loads = json.loads
        monkeypatch.setattr(
            "repro.campaigns.store.json.loads",
            lambda raw: calls.append(raw) or real_loads(raw),
        )
        second = list(store.iter_payloads("stream"))
        assert second == first
        assert calls == []  # everything came from the tail cache

    def test_cache_is_invalidated_when_the_file_shrinks(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        for i in range(4):
            store.append_payload("stream", f"k{i}", {"i": i})
        assert len(list(store.iter_payloads("stream"))) == 4
        # an external truncation (e.g. manual repair) shrinks the file
        lines = store.channel_path("stream").read_text(encoding="utf-8")
        kept = "".join(lines.splitlines(keepends=True)[:2])
        store.channel_path("stream").write_text(kept, encoding="utf-8")
        assert [k for k, _ in store.iter_payloads("stream")] == ["k0", "k1"]

    def test_partial_tail_is_consumed_only_once_completed(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        store.append_payload("stream", "a", {"v": 1})
        path = store.channel_path("stream")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"format_version": 2, "key": "b", "payload": {"v": 2}')
        assert [k for k, _ in store.iter_payloads("stream")] == ["a"]
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("}\n")  # a slow writer finishes the line
        assert [k for k, _ in store.iter_payloads("stream")] == ["a", "b"]
        assert dict(store.iter_payloads("stream"))["b"] == {"v": 2}
