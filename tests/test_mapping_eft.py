"""Tests for the EFT placement engine and the allocation packing mechanism."""

import pytest

from repro.allocation.base import Allocation
from repro.allocation.reference import ReferenceCluster
from repro.mapping.eft import PlacementEngine
from repro.mapping.schedule import Schedule

from tests.conftest import make_chain_ptg, make_fork_join_ptg


def allocation_for(ptg, platform, procs_per_task=1, beta=1.0):
    alloc = Allocation(ptg, ReferenceCluster.of(platform), beta=beta)
    if procs_per_task > 1:
        for task in ptg.tasks():
            alloc.set_processors(task.task_id, procs_per_task)
    return alloc


class TestBasicPlacement:
    def test_entry_task_starts_at_zero(self, small_platform, chain_ptg):
        engine = PlacementEngine(small_platform)
        schedule = Schedule(small_platform.name)
        alloc = allocation_for(chain_ptg, small_platform)
        entry = engine.place("app", chain_ptg.task(0), alloc, [], schedule)
        assert entry.start == 0.0
        assert entry.finish > 0.0
        assert schedule.has_entry("app", 0)

    def test_prefers_fastest_cluster_when_idle(self, small_platform, chain_ptg):
        engine = PlacementEngine(small_platform)
        schedule = Schedule(small_platform.name)
        alloc = allocation_for(chain_ptg, small_platform)
        entry = engine.place("app", chain_ptg.task(0), alloc, [], schedule)
        # the 4 GFlop/s cluster always wins for a 1-processor allocation
        fastest = max(small_platform, key=lambda c: c.speed_gflops)
        assert entry.cluster_name == fastest.name

    def test_successor_waits_for_predecessor(self, small_platform, chain_ptg):
        engine = PlacementEngine(small_platform)
        schedule = Schedule(small_platform.name)
        alloc = allocation_for(chain_ptg, small_platform)
        first = engine.place("app", chain_ptg.task(0), alloc, [], schedule)
        second = engine.place(
            "app", chain_ptg.task(1), alloc,
            [(0, chain_ptg.edge_data(0, 1))], schedule,
        )
        assert second.start >= first.finish

    def test_not_before_respected(self, small_platform, chain_ptg):
        engine = PlacementEngine(small_platform)
        schedule = Schedule(small_platform.name)
        alloc = allocation_for(chain_ptg, small_platform)
        entry = engine.place("app", chain_ptg.task(0), alloc, [], schedule, not_before=7.5)
        assert entry.start >= 7.5

    def test_no_processor_overlap_after_many_placements(self, small_platform, fork_join_ptg):
        engine = PlacementEngine(small_platform)
        schedule = Schedule(small_platform.name)
        alloc = allocation_for(fork_join_ptg, small_platform, procs_per_task=3)
        order = fork_join_ptg.topological_order()
        for tid in order:
            preds = [
                (p, fork_join_ptg.edge_data(p, tid))
                for p in fork_join_ptg.predecessors(tid)
            ]
            engine.place(fork_join_ptg.name, fork_join_ptg.task(tid), alloc, preds, schedule)
        schedule.validate_no_overlap()
        schedule.validate_precedences([fork_join_ptg])

    def test_reference_allocation_recorded(self, small_platform, chain_ptg):
        engine = PlacementEngine(small_platform)
        schedule = Schedule(small_platform.name)
        alloc = allocation_for(chain_ptg, small_platform, procs_per_task=4)
        entry = engine.place("app", chain_ptg.task(0), alloc, [], schedule)
        assert entry.reference_processors == 4


class TestPacking:
    def make_busy_platform_schedule(self, platform, engine, schedule, ptg, alloc):
        """Fill most processors so the next task is delayed."""
        # occupy everything with the wide level of a fork-join graph
        for tid in ptg.topological_order():
            preds = [(p, ptg.edge_data(p, tid)) for p in ptg.predecessors(tid)]
            engine.place("bg", ptg.task(tid), alloc, preds, schedule)

    def test_packing_reduces_allocation_when_beneficial(self, small_platform):
        background = make_fork_join_ptg("bg", width=6, flops=60e9, alpha=0.05)
        bg_alloc = allocation_for(background, small_platform, procs_per_task=3)
        engine = PlacementEngine(small_platform, enable_packing=True)
        schedule = Schedule(small_platform.name)
        self.make_busy_platform_schedule(small_platform, engine, schedule, background, bg_alloc)

        probe = make_chain_ptg("probe", n=1, flops=10e9, alpha=0.05)
        probe_alloc = allocation_for(probe, small_platform, procs_per_task=8)
        entry = engine.place("probe", probe.task(0), probe_alloc, [], schedule)
        # either it fit at full size or the packing reduced it; in both cases
        # the schedule stays consistent
        assert 1 <= entry.num_processors <= 8
        schedule.validate_no_overlap()

    def test_packing_never_hurts_finish_time(self, small_platform):
        background = make_fork_join_ptg("bg", width=6, flops=60e9, alpha=0.05)
        bg_alloc = allocation_for(background, small_platform, procs_per_task=3)

        results = {}
        for packing in (True, False):
            engine = PlacementEngine(small_platform, enable_packing=packing)
            schedule = Schedule(small_platform.name)
            self.make_busy_platform_schedule(
                small_platform, engine, schedule, background, bg_alloc
            )
            probe = make_chain_ptg("probe", n=1, flops=10e9, alpha=0.05)
            probe_alloc = allocation_for(probe, small_platform, procs_per_task=8)
            entry = engine.place("probe", probe.task(0), probe_alloc, [], schedule)
            results[packing] = entry.finish
        assert results[True] <= results[False] + 1e-9

    def test_packing_counter(self, small_platform):
        engine = PlacementEngine(small_platform, enable_packing=True)
        assert engine.packed_tasks == 0


class TestPackingDegeneratesToOneProcessor:
    def test_packing_degenerates_to_single_processor(self, small_platform):
        """A busy cluster plus a highly parallelizable probe can pack to p=1.

        One processor of the fast cluster is left idle while all the
        others are busy for a long time; the probe's requested allocation
        would wait, but on a single processor it starts immediately and
        (alpha=0) finishes no later -- the paper's packing rule therefore
        shrinks the allocation all the way down to one processor.
        """
        engine = PlacementEngine(small_platform, enable_packing=True)
        schedule = Schedule(small_platform.name)
        fast = max(small_platform, key=lambda c: c.speed_gflops)
        slow = min(small_platform, key=lambda c: c.speed_gflops)
        # occupy all but one processor of the fast cluster, and the whole
        # slow cluster even longer so it never wins the EFT comparison
        engine.timelines.timeline(fast.name).reserve(
            fast.num_processors - 1, 0.0, 1000.0
        )
        engine.timelines.timeline(slow.name).reserve(
            slow.num_processors, 0.0, 10000.0
        )

        probe = make_chain_ptg("probe", n=1, flops=4e9, alpha=0.0)
        alloc = allocation_for(probe, small_platform, procs_per_task=8)
        entry = engine.place("probe", probe.task(0), alloc, [], schedule)
        assert entry.cluster_name == fast.name
        assert entry.num_processors == 1
        assert entry.start == 0.0
        assert engine.packed_tasks == 1

    def test_negative_ready_time_rejected(self, small_platform, chain_ptg):
        from repro.exceptions import MappingError

        engine = PlacementEngine(small_platform)
        schedule = Schedule(small_platform.name)
        alloc = allocation_for(chain_ptg, small_platform)
        with pytest.raises(MappingError, match="ready_time must be non-negative"):
            engine.place("app", chain_ptg.task(0), alloc, [], schedule, not_before=-1.0)
