"""Tests for the fluid fair-sharing network model."""

import pytest

from repro.exceptions import SimulationError
from repro.simulate.engine import SimulationEngine
from repro.simulate.network import FairShareNetwork


@pytest.fixture
def engine():
    return SimulationEngine()


@pytest.fixture
def network(small_platform, engine):
    return FairShareNetwork(small_platform, engine)


class TestBasicTransfers:
    def test_intra_cluster_completes_immediately(self, small_platform, engine, network):
        done = []
        name = small_platform.cluster_names()[0]
        network.start_transfer(1e9, name, name, lambda: done.append(engine.now))
        engine.run()
        assert done == [0.0]

    def test_zero_bytes_completes_after_latency(self, small_platform, engine, network):
        done = []
        a, b = small_platform.cluster_names()
        network.start_transfer(0.0, a, b, lambda: done.append(engine.now))
        engine.run()
        assert len(done) == 1
        assert done[0] <= small_platform.topology.path_latency(a, b) + 1e-9

    def test_single_flow_duration(self, small_platform, engine, network):
        done = []
        a, b = small_platform.cluster_names()
        data = 1e9
        network.start_transfer(data, a, b, lambda: done.append(engine.now))
        engine.run()
        bandwidth = small_platform.topology.route_bandwidth(
            a, b,
            small_platform.cluster(a).num_processors,
            small_platform.cluster(b).num_processors,
        )
        expected = small_platform.topology.path_latency(a, b) + data / bandwidth
        assert done[0] == pytest.approx(expected, rel=1e-3)

    def test_counters(self, small_platform, engine, network):
        a, b = small_platform.cluster_names()
        network.start_transfer(5e8, a, b, lambda: None)
        engine.run()
        assert network.completed_flows == 1
        assert network.total_bytes_transferred == pytest.approx(5e8)
        assert network.active_flows == 0

    def test_invalid_arguments(self, small_platform, engine, network):
        a, b = small_platform.cluster_names()
        with pytest.raises(SimulationError):
            network.start_transfer(-1.0, a, b, lambda: None)
        with pytest.raises(SimulationError):
            network.start_transfer(1.0, a, "nope", lambda: None)


class TestContention:
    def test_two_flows_share_bandwidth(self, small_platform, engine, network):
        """Two simultaneous flows on the same route take about twice as long."""
        a, b = small_platform.cluster_names()
        data = 2e9
        finishes = []
        network.start_transfer(data, a, b, lambda: finishes.append(engine.now))
        network.start_transfer(data, a, b, lambda: finishes.append(engine.now))
        engine.run()
        bandwidth = small_platform.topology.route_bandwidth(
            a, b,
            small_platform.cluster(a).num_processors,
            small_platform.cluster(b).num_processors,
        )
        single_duration = data / bandwidth
        assert len(finishes) == 2
        assert max(finishes) == pytest.approx(2 * single_duration, rel=0.05)

    def test_flow_speeds_up_after_competitor_finishes(self, small_platform, engine, network):
        """A long flow sharing with a short one finishes earlier than 2x alone."""
        a, b = small_platform.cluster_names()
        bandwidth = small_platform.topology.route_bandwidth(
            a, b,
            small_platform.cluster(a).num_processors,
            small_platform.cluster(b).num_processors,
        )
        finishes = {}
        network.start_transfer(4e9, a, b, lambda: finishes.__setitem__("long", engine.now))
        network.start_transfer(1e9, a, b, lambda: finishes.__setitem__("short", engine.now))
        engine.run()
        alone = 4e9 / bandwidth
        assert finishes["short"] < finishes["long"]
        # the long flow is only delayed by the time it shared with the short one
        assert finishes["long"] < 2 * alone
        assert finishes["long"] > alone

    def test_opposite_direction_flows_share_the_switch(self, small_platform, engine, network):
        a, b = small_platform.cluster_names()
        finishes = []
        network.start_transfer(2e9, a, b, lambda: finishes.append(engine.now))
        network.start_transfer(2e9, b, a, lambda: finishes.append(engine.now))
        engine.run()
        assert len(finishes) == 2

    def test_reverse_flows_on_split_switch_platform(self, split_switch_platform, engine):
        network = FairShareNetwork(split_switch_platform, engine)
        a, b = split_switch_platform.cluster_names()
        done = []
        network.start_transfer(1e9, a, b, lambda: done.append(engine.now))
        engine.run()
        assert len(done) == 1

    def test_flow_rate_query(self, small_platform, engine, network):
        a, b = small_platform.cluster_names()
        flow_id = network.start_transfer(1e9, a, b, lambda: None)
        # the fluid part only starts after the latency event
        engine.step()
        assert network.flow_rate(flow_id) > 0
        engine.run()
        with pytest.raises(SimulationError):
            network.flow_rate(flow_id)
