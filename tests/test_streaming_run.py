"""Tests of the streaming spec layer, scenario execution and persistence."""

import json

import pytest

from repro.campaigns.store import CampaignStore
from repro.exceptions import CampaignError, ConfigurationError
from repro.scenarios.run import run_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.streaming.run import (
    STREAM_CHANNEL,
    StreamOutcome,
    StreamScenarioResult,
    run_stream_scenario,
    run_stream_scenarios,
    schedule_from_rows,
    schedule_to_rows,
)
from repro.streaming.spec import ArrivalSpec, generate_arrivals


def stream_spec(**arrival_overrides) -> ScenarioSpec:
    arrivals = {
        "process": "poisson",
        "rate": 0.05,
        "n_arrivals": 5,
        "family": "random",
        "max_tasks": 10,
        "tenants": 2,
    }
    arrivals.update(arrival_overrides)
    return ScenarioSpec.from_dict(
        {
            "platform": "lille",
            "arrivals": arrivals,
            "strategies": ["ES"],
        }
    )


class TestArrivalSpec:
    def test_round_trips_through_json(self):
        spec = ArrivalSpec(process="mmpp", rate=0.2, n_arrivals=7, burst=6.0, dwell=9.0)
        clone = ArrivalSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec

    def test_unknown_keys_and_processes_rejected(self):
        with pytest.raises(ConfigurationError):
            ArrivalSpec.from_dict({"proces": "poisson"})
        with pytest.raises(ConfigurationError):
            ArrivalSpec(process="lognormal")
        with pytest.raises(ConfigurationError):
            ArrivalSpec(rate=-1.0)
        with pytest.raises(ConfigurationError):
            ArrivalSpec(tenants=0)

    def test_trace_process_requires_trace(self):
        with pytest.raises(ConfigurationError):
            ArrivalSpec(process="trace")
        spec = ArrivalSpec(process="trace", trace=(0.0, 3.0, 9.0))
        assert spec.n_arrivals == 3  # defaults to the trace length

    def test_generate_arrivals_is_deterministic_and_labelled(self):
        spec = ArrivalSpec(rate=0.1, n_arrivals=6, tenants=3, seed=5)
        first = generate_arrivals(spec)
        second = generate_arrivals(spec)
        assert [a.time for a in first] == [a.time for a in second]
        assert [a.ptg.name for a in first] == [a.ptg.name for a in second]
        assert [a.tenant for a in first] == [
            "tenant-0", "tenant-1", "tenant-2", "tenant-0", "tenant-1", "tenant-2",
        ]

    def test_streaming_changes_the_scenario_hash(self):
        streaming = stream_spec()
        batch = ScenarioSpec.from_dict({"platform": "lille", "strategies": ["ES"]})
        assert streaming.content_hash() != batch.content_hash()
        assert stream_spec(seed=1).content_hash() != streaming.content_hash()
        assert stream_spec().content_hash() == streaming.content_hash()


class TestRunStreamScenario:
    def test_produces_validated_outcomes(self):
        result = run_stream_scenario(stream_spec())
        outcome = result.outcomes["ES"]
        assert outcome.valid is True
        assert outcome.n_arrivals == 5
        assert outcome.horizon > 0
        assert 0 < outcome.utilisation <= 1
        assert set(outcome.tenant_stall) == {"tenant-0", "tenant-1"}
        assert outcome.windowed.n_windows >= 1
        assert sum(outcome.windowed.completions) == 5
        # live results carry the schedule object
        assert len(result.results["ES"].schedule) == len(outcome.schedule_rows)

    def test_batch_spec_rejected(self):
        batch = ScenarioSpec.from_dict({"platform": "lille"})
        with pytest.raises(ConfigurationError):
            run_stream_scenario(batch)

    def test_non_ready_list_mapper_rejected(self):
        """The online engine always maps ready-list style; a spec naming
        another mapper would store a bit-identical duplicate result."""
        spec = stream_spec()
        payload = spec.to_dict()
        payload["pipeline"]["mapper"] = "global-order"
        with pytest.raises(ConfigurationError, match="ready-list"):
            run_stream_scenario(ScenarioSpec.from_dict(payload))

    def test_streaming_spec_rejected_by_batch_runner(self):
        with pytest.raises(ConfigurationError):
            run_scenario(stream_spec())

    def test_record_round_trip(self):
        result = run_stream_scenario(stream_spec())
        record = json.loads(json.dumps(result.to_record()))
        clone = StreamScenarioResult.from_record(record)
        assert clone.spec == result.spec
        original = result.outcomes["ES"]
        restored = clone.outcomes["ES"]
        assert restored.completion_times == original.completion_times
        assert restored.windowed.utilisation == original.windowed.utilisation
        schedule = restored.schedule("lille")
        assert len(schedule) == len(original.schedule_rows)

    def test_schedule_rows_round_trip(self):
        result = run_stream_scenario(stream_spec())
        schedule = result.results["ES"].schedule
        rebuilt = schedule_from_rows(schedule_to_rows(schedule), "lille")
        assert len(rebuilt) == len(schedule)
        for entry in schedule:
            other = rebuilt.entry(entry.ptg_name, entry.task_id)
            assert (entry.start, entry.finish, entry.processors) == (
                other.start, other.finish, other.processors,
            )

    def test_outcome_without_schedule_cannot_rebuild_it(self):
        result = run_stream_scenario(stream_spec(), keep_schedule=False)
        outcome = result.outcomes["ES"]
        assert outcome.schedule_rows == []
        with pytest.raises(CampaignError):
            outcome.schedule()


class TestRunStreamScenarios:
    def test_store_resume_skips_completed_scenarios(self, tmp_path):
        spec = stream_spec()
        messages = []
        first = run_stream_scenarios(
            [spec], jobs=1, store=str(tmp_path), progress=messages.append
        )
        store = CampaignStore(tmp_path)
        assert len(store.payloads_by_key(STREAM_CHANNEL)) == 1
        second = run_stream_scenarios(
            [spec], jobs=1, store=str(tmp_path), resume=True, progress=messages.append
        )
        assert any("resuming" in m for m in messages)
        assert (
            second[0].outcomes["ES"].completion_times
            == first[0].outcomes["ES"].completion_times
        )

    def test_populated_store_without_resume_rejected(self, tmp_path):
        spec = stream_spec()
        run_stream_scenarios([spec], jobs=1, store=str(tmp_path))
        with pytest.raises(CampaignError):
            run_stream_scenarios([spec], jobs=1, store=str(tmp_path), resume=False)

    def test_duplicate_specs_run_once(self, tmp_path):
        spec = stream_spec()
        results = run_stream_scenarios([spec, spec], jobs=1, store=str(tmp_path))
        assert len(results) == 2
        assert len(CampaignStore(tmp_path).payloads_by_key(STREAM_CHANNEL)) == 1

    def test_parallel_run_matches_inline(self, tmp_path):
        specs = [stream_spec(), stream_spec(seed=1)]
        inline = run_stream_scenarios(specs, jobs=1)
        parallel = run_stream_scenarios(specs, jobs=2)
        for one, two in zip(inline, parallel):
            assert one.outcomes["ES"].completion_times == two.outcomes["ES"].completion_times

    def test_batch_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_stream_scenarios([ScenarioSpec.from_dict({"platform": "lille"})])
        with pytest.raises(ConfigurationError):
            run_stream_scenarios([])
