"""Differential test: replaying a plan reproduces the mapper's predictions.

The mappers plan start / finish times from three ingredients: the
predecessors' planned finishes, the communication estimator's transfer
times and the non-insertion processor availability.  Replaying the
schedule through the discrete-event engine with the **same** transfer
model (:class:`~repro.simulate.network.EstimatorNetwork`, contention
free) must therefore reproduce every planned start and finish to within
float tolerance -- for offline batches, for the baselines' schedules and
for streaming runs (where the release times gate the replay).

A drift here means the mapper and the simulator disagree about the
platform model, which is exactly the class of bug a reproduction cannot
afford.  The contention-aware fair-share replay is *expected* to drift
(that is its purpose); the last test pins the direction of that drift.
"""

import numpy as np
import pytest

from repro.constraints.strategies import EqualShareStrategy
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.platform import grid5000
from repro.platform.builder import heterogeneous_platform
from repro.scenarios.spec import ScenarioSpec
from repro.scheduler.concurrent import ConcurrentScheduler
from repro.scheduler.online import Arrival, OnlineConcurrentScheduler
from repro.simulate.executor import ScheduleExecutor
from repro.simulate.network import EstimatorNetwork
from repro.streaming.spec import ArrivalSpec, generate_arrivals

REL_TOL = 1e-9
ABS_TOL = 1e-6


def assert_replay_matches_plan(report, schedule):
    """Every measured record must equal its planned entry."""
    assert len(report.records) == len(schedule)
    for record in report.records:
        entry = schedule.entry(record.ptg_name, record.task_id)
        scale = max(1.0, abs(entry.start), abs(entry.finish))
        assert record.start == pytest.approx(
            entry.start, rel=REL_TOL, abs=ABS_TOL * scale
        ), (record, entry)
        assert record.finish == pytest.approx(
            entry.finish, rel=REL_TOL, abs=ABS_TOL * scale
        ), (record, entry)


class TestOfflineDifferential:
    @pytest.mark.parametrize("site", ["lille", "rennes"])
    def test_concurrent_schedule_replays_exactly(self, site):
        platform = grid5000.site(site)
        workload = make_workload(
            WorkloadSpec(family="random", n_ptgs=4, seed=11, max_tasks=20)
        )
        planned = ConcurrentScheduler(EqualShareStrategy()).schedule(
            workload, platform
        )
        executor = ScheduleExecutor(platform, network_factory=EstimatorNetwork)
        report = executor.execute(workload, planned.schedule)
        assert_replay_matches_plan(report, planned.schedule)
        # the per-application makespans follow
        for name, makespan in report.makespans().items():
            assert makespan == pytest.approx(
                planned.schedule.makespan(name), rel=REL_TOL, abs=ABS_TOL
            )

    def test_fft_workload_replays_exactly(self):
        platform = grid5000.site("nancy")
        workload = make_workload(WorkloadSpec(family="fft", n_ptgs=3, seed=5))
        planned = ConcurrentScheduler(EqualShareStrategy()).schedule(
            workload, platform
        )
        executor = ScheduleExecutor(platform, network_factory=EstimatorNetwork)
        report = executor.execute(workload, planned.schedule)
        assert_replay_matches_plan(report, planned.schedule)


class TestStreamingDifferential:
    def test_online_schedule_replays_exactly_with_releases(self):
        platform = heterogeneous_platform((10, 16), (2.5, 4.0), name="diff-online")
        spec = ArrivalSpec(
            process="poisson", rate=0.02, n_arrivals=8, seed=3,
            family="random", max_tasks=12,
        )
        arrivals = generate_arrivals(spec)
        result = OnlineConcurrentScheduler(EqualShareStrategy()).schedule(
            arrivals, platform
        )
        releases = {a.ptg.name: a.time for a in arrivals}
        executor = ScheduleExecutor(platform, network_factory=EstimatorNetwork)
        report = executor.execute(
            [a.ptg for a in arrivals], result.schedule, releases=releases
        )
        assert_replay_matches_plan(report, result.schedule)
        # measured completions equal the engine's incremental bookkeeping
        for name, completion in result.completion_times.items():
            assert report.makespan(name) == pytest.approx(
                completion, rel=REL_TOL, abs=ABS_TOL
            )

    def test_release_times_gate_the_replay(self):
        """Without the release map, late applications would start early."""
        platform = heterogeneous_platform((6, 8), (2.0, 3.0), name="diff-release")
        ptgs = make_workload(
            WorkloadSpec(family="random", n_ptgs=2, seed=9, max_tasks=10)
        )
        arrivals = [Arrival(ptgs[0], 0.0), Arrival(ptgs[1], 500.0)]
        result = OnlineConcurrentScheduler(EqualShareStrategy()).schedule(
            arrivals, platform
        )
        executor = ScheduleExecutor(platform, network_factory=EstimatorNetwork)
        releases = {a.ptg.name: a.time for a in arrivals}
        report = executor.execute(ptgs, result.schedule, releases=releases)
        assert_replay_matches_plan(report, result.schedule)
        late = [r for r in report.records if r.ptg_name == ptgs[1].name]
        assert min(r.start for r in late) >= 500.0 - 1e-9


class TestFairShareDrift:
    def test_contention_only_delays(self):
        """The fair-share replay never finishes a task before its plan."""
        platform = grid5000.site("lille")
        workload = make_workload(
            WorkloadSpec(family="random", n_ptgs=4, seed=2, max_tasks=20)
        )
        planned = ConcurrentScheduler(EqualShareStrategy()).schedule(
            workload, platform
        )
        report = ScheduleExecutor(platform).execute(workload, planned.schedule)
        for record in report.records:
            assert record.finish >= record.planned_start - 1e-9
