"""Property-based tests (hypothesis) for the PTG data structure and generators."""

import math

from hypothesis import given, settings, strategies as st

from repro.dag.cost_models import ComplexityClass
from repro.dag.generator import RandomPTGConfig, generate_random_ptg
from repro.dag.graph import PTG
from repro.dag.io import ptg_from_json, ptg_to_json
from repro.dag.task import Task

# strategy for generator configurations within the paper's parameter ranges
config_strategy = st.builds(
    RandomPTGConfig,
    n_tasks=st.integers(min_value=1, max_value=30),
    width=st.floats(min_value=0.1, max_value=1.0),
    regularity=st.floats(min_value=0.0, max_value=1.0),
    density=st.floats(min_value=0.0, max_value=1.0),
    jump=st.integers(min_value=1, max_value=4),
)


@settings(max_examples=40, deadline=None)
@given(config=config_strategy, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_generated_graphs_are_valid_dags(config, seed):
    """Any generated graph is acyclic with a single entry and a single exit."""
    graph = generate_random_ptg(seed, config)
    graph.validate()
    assert len(graph.real_tasks()) == config.n_tasks
    order = graph.topological_order()
    position = {tid: i for i, tid in enumerate(order)}
    for src, dst, data in graph.edges():
        assert position[src] < position[dst]
        assert data >= 0


@settings(max_examples=40, deadline=None)
@given(config=config_strategy, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_precedence_levels_consistent_with_edges(config, seed):
    """Every edge goes from a strictly lower precedence level to a higher one."""
    graph = generate_random_ptg(seed, config)
    levels = graph.precedence_levels()
    for src, dst, _ in graph.edges():
        assert levels[src] < levels[dst]
    widths = graph.level_widths()
    assert sum(widths) == graph.n_tasks
    assert graph.max_width(include_synthetic=True) == max(widths)


@settings(max_examples=40, deadline=None)
@given(config=config_strategy, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_bottom_levels_dominate_successors(config, seed):
    """bl(v) >= time(v) + bl(w) for every edge (v, w) when comm is ignored."""
    graph = generate_random_ptg(seed, config)

    def time_fn(task):
        return 0.0 if task.is_synthetic else task.flops / 1e9

    bl = graph.bottom_levels(time_fn)
    for src, dst, _ in graph.edges():
        assert bl[src] >= time_fn(graph.task(src)) + bl[dst] - 1e-6
    assert graph.critical_path_length(time_fn) == max(bl.values())


@settings(max_examples=40, deadline=None)
@given(config=config_strategy, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_critical_path_is_a_real_path_with_maximal_length(config, seed):
    graph = generate_random_ptg(seed, config)

    def time_fn(task):
        return 0.0 if task.is_synthetic else task.flops / 1e9

    path = graph.critical_path(time_fn)
    # consecutive nodes are connected
    for a, b in zip(path, path[1:]):
        assert graph.has_edge(a, b)
    # the path length equals the critical path length
    assert sum(time_fn(graph.task(t)) for t in path) == (
        graph.critical_path_length(time_fn)
    ) or math.isclose(
        sum(time_fn(graph.task(t)) for t in path),
        graph.critical_path_length(time_fn),
        rel_tol=1e-9,
    )


@settings(max_examples=30, deadline=None)
@given(config=config_strategy, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_json_round_trip_is_lossless(config, seed):
    graph = generate_random_ptg(seed, config)
    restored = ptg_from_json(ptg_to_json(graph))
    assert restored.name == graph.name
    assert sorted(restored.edges()) == sorted(graph.edges())
    for task in graph.tasks():
        other = restored.task(task.task_id)
        assert other.flops == task.flops
        assert other.alpha == task.alpha
        assert other.data_elements == task.data_elements


@settings(max_examples=50, deadline=None)
@given(
    flops=st.floats(min_value=1e6, max_value=1e14),
    alpha=st.floats(min_value=0.0, max_value=1.0),
    procs=st.integers(min_value=1, max_value=512),
    speed=st.floats(min_value=1e8, max_value=1e11),
)
def test_amdahl_time_monotone_in_processors(flops, alpha, procs, speed):
    """More processors never increase a task's execution time."""
    task = Task(0, flops=flops, alpha=alpha)
    t1 = task.execution_time(procs, speed)
    t2 = task.execution_time(procs + 1, speed)
    assert t2 <= t1 + 1e-9
    assert task.execution_time(1, speed) >= t1 - 1e-9
