"""Tests for the M-HEFT baseline scheduler."""

import pytest

from repro.baselines.heft import HEFTScheduler
from repro.baselines.mheft import MHEFTScheduler, _candidate_processor_counts
from repro.exceptions import MappingError
from repro.platform.cluster import Cluster

from tests.conftest import make_chain_ptg


class TestCandidateCounts:
    def test_powers_of_two_plus_full_cluster(self):
        counts = _candidate_processor_counts(Cluster("c", 12, 1.0))
        assert counts == [1, 2, 4, 8, 12]

    def test_exact_power_of_two_cluster(self):
        counts = _candidate_processor_counts(Cluster("c", 8, 1.0))
        assert counts == [1, 2, 4, 8]

    def test_cap(self):
        counts = _candidate_processor_counts(Cluster("c", 32, 1.0), cap=5)
        assert counts == [1, 2, 4, 5]


class TestMHEFT:
    def test_schedule_consistency(self, medium_platform, small_random_ptg):
        schedule = MHEFTScheduler().schedule(small_random_ptg, medium_platform)
        assert len(schedule) == small_random_ptg.n_tasks
        schedule.validate_no_overlap()
        schedule.validate_precedences([small_random_ptg])

    def test_exploits_data_parallelism_on_chains(self, medium_platform):
        """Unlike HEFT, M-HEFT shortens a chain by allocating several processors."""
        ptg = make_chain_ptg(n=3, flops=100e9, alpha=0.05)
        heft = HEFTScheduler().schedule(ptg, medium_platform)
        mheft = MHEFTScheduler().schedule(ptg.copy(), medium_platform)
        assert mheft.makespan(ptg.name) < heft.makespan(ptg.name)

    def test_some_tasks_get_multiple_processors(self, medium_platform):
        ptg = make_chain_ptg(n=3, flops=100e9, alpha=0.05)
        schedule = MHEFTScheduler().schedule(ptg, medium_platform)
        assert any(entry.num_processors > 1 for entry in schedule)

    def test_processor_cap_respected(self, medium_platform):
        ptg = make_chain_ptg(n=3, flops=100e9, alpha=0.05)
        schedule = MHEFTScheduler(max_task_processors=2).schedule(ptg, medium_platform)
        assert all(entry.num_processors <= 2 for entry in schedule)

    def test_invalid_cap(self):
        with pytest.raises(MappingError):
            MHEFTScheduler(max_task_processors=0)

    def test_multiple_applications(self, medium_platform, random_workload):
        schedule = MHEFTScheduler().schedule(random_workload, medium_platform)
        schedule.validate_no_overlap()
        for ptg in random_workload:
            schedule.validate_precedences([ptg])

    def test_empty_input_rejected(self, medium_platform):
        with pytest.raises(MappingError):
            MHEFTScheduler().schedule([], medium_platform)
