"""Tests for the PTG container (repro.dag.graph)."""

import pytest

from repro.dag.graph import PTG
from repro.dag.task import Task
from repro.exceptions import InvalidGraphError

from tests.conftest import make_chain_ptg, make_diamond_ptg, make_fork_join_ptg


def unit_time(task):
    """A time function: one second per task, zero for synthetic tasks."""
    return 0.0 if task.is_synthetic else 1.0


class TestConstruction:
    def test_add_task_and_edge(self, diamond_ptg):
        assert diamond_ptg.n_tasks == 4
        assert diamond_ptg.n_edges == 4
        assert diamond_ptg.has_edge(0, 1)
        assert not diamond_ptg.has_edge(1, 0)

    def test_duplicate_task_rejected(self):
        g = PTG("g")
        g.add_task(Task(0, 1e9, 0.1))
        with pytest.raises(InvalidGraphError):
            g.add_task(Task(0, 2e9, 0.1))

    def test_edge_validation(self):
        g = PTG("g")
        g.add_task(Task(0, 1e9, 0.1))
        g.add_task(Task(1, 1e9, 0.1))
        with pytest.raises(InvalidGraphError):
            g.add_edge(0, 99)
        with pytest.raises(InvalidGraphError):
            g.add_edge(99, 0)
        with pytest.raises(InvalidGraphError):
            g.add_edge(0, 0)
        g.add_edge(0, 1, 10.0)
        with pytest.raises(InvalidGraphError):
            g.add_edge(0, 1, 10.0)
        with pytest.raises(InvalidGraphError):
            g.add_edge(1, 0, -5.0)

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidGraphError):
            PTG("")

    def test_edge_data_lookup(self, diamond_ptg):
        assert diamond_ptg.edge_data(0, 1) == pytest.approx(8.0 * 4e6)
        with pytest.raises(InvalidGraphError):
            diamond_ptg.edge_data(1, 2)

    def test_copy_is_independent(self, diamond_ptg):
        clone = diamond_ptg.copy("clone")
        clone.add_task(Task(99, 1e9, 0.1))
        assert 99 in clone
        assert 99 not in diamond_ptg


class TestStructuralQueries:
    def test_predecessors_successors(self, diamond_ptg):
        assert set(diamond_ptg.successors(0)) == {1, 2}
        assert set(diamond_ptg.predecessors(3)) == {1, 2}
        assert diamond_ptg.in_degree(0) == 0
        assert diamond_ptg.out_degree(3) == 0

    def test_entry_exit(self, diamond_ptg):
        assert diamond_ptg.entry_task.task_id == 0
        assert diamond_ptg.exit_task.task_id == 3

    def test_topological_order(self, diamond_ptg):
        order = diamond_ptg.topological_order()
        assert order.index(0) < order.index(1) < order.index(3)
        assert order.index(0) < order.index(2) < order.index(3)

    def test_cycle_detected(self):
        g = PTG("cycle")
        for i in range(3):
            g.add_task(Task(i, 1e9, 0.1))
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 0)
        with pytest.raises(InvalidGraphError):
            g.topological_order()

    def test_precedence_levels_diamond(self, diamond_ptg):
        levels = diamond_ptg.precedence_levels()
        assert levels == {0: 0, 1: 1, 2: 1, 3: 2}
        assert diamond_ptg.depth == 3
        assert diamond_ptg.level_widths() == [1, 2, 1]

    def test_precedence_levels_chain(self, chain_ptg):
        assert chain_ptg.level_widths() == [1, 1, 1, 1]
        assert chain_ptg.max_width() == 1

    def test_max_width_fork_join(self, fork_join_ptg):
        assert fork_join_ptg.max_width() == 5

    def test_tasks_by_level(self, diamond_ptg):
        by_level = diamond_ptg.tasks_by_level()
        assert sorted(by_level[1]) == [1, 2]

    def test_total_work(self, diamond_ptg):
        assert diamond_ptg.total_work() == pytest.approx(4 * 8e9)

    def test_total_data_bytes(self, diamond_ptg):
        assert diamond_ptg.total_data_bytes() == pytest.approx(4 * 8 * 4e6)


class TestSingleEntryExit:
    def test_already_single(self, chain_ptg):
        before = chain_ptg.n_tasks
        chain_ptg.ensure_single_entry_exit()
        assert chain_ptg.n_tasks == before

    def test_multiple_entries_get_virtual_entry(self):
        g = PTG("multi")
        for i in range(3):
            g.add_task(Task(i, 1e9, 0.1))
        g.add_edge(0, 2)
        g.add_edge(1, 2)
        g.ensure_single_entry_exit()
        g.validate()
        assert g.entry_task.is_synthetic
        assert len(g.real_tasks()) == 3

    def test_multiple_exits_get_virtual_exit(self):
        g = PTG("multi-exit")
        for i in range(3):
            g.add_task(Task(i, 1e9, 0.1))
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        g.ensure_single_entry_exit()
        g.validate()
        assert g.exit_task.is_synthetic

    def test_validate_rejects_multiple_entries(self):
        g = PTG("bad")
        g.add_task(Task(0, 1e9, 0.1))
        g.add_task(Task(1, 1e9, 0.1))
        with pytest.raises(InvalidGraphError):
            g.validate()
        g.validate(require_single_entry_exit=False)

    def test_empty_graph_invalid(self):
        with pytest.raises(InvalidGraphError):
            PTG("empty").validate()


class TestTimedQuantities:
    def test_bottom_levels_chain(self, chain_ptg):
        bl = chain_ptg.bottom_levels(unit_time)
        assert bl[0] == pytest.approx(4.0)
        assert bl[3] == pytest.approx(1.0)

    def test_bottom_levels_with_communication(self, chain_ptg):
        bl = chain_ptg.bottom_levels(unit_time, lambda s, d, data: 0.5)
        assert bl[0] == pytest.approx(4.0 + 3 * 0.5)

    def test_top_levels_chain(self, chain_ptg):
        tl = chain_ptg.top_levels(unit_time)
        assert tl[0] == 0.0
        assert tl[3] == pytest.approx(3.0)

    def test_critical_path_chain(self, chain_ptg):
        assert chain_ptg.critical_path_length(unit_time) == pytest.approx(4.0)
        assert chain_ptg.critical_path(unit_time) == [0, 1, 2, 3]

    def test_critical_path_prefers_heavier_branch(self):
        g = make_diamond_ptg()
        # make task 2 heavier than task 1

        def weighted(task):
            return 5.0 if task.task_id == 2 else 1.0

        path = g.critical_path(weighted)
        assert path == [0, 2, 3]
        assert g.critical_path_length(weighted) == pytest.approx(7.0)

    def test_average_execution_time(self, diamond_ptg):
        assert diamond_ptg.average_execution_time(unit_time) == pytest.approx(1.0)

    def test_empty_critical_path(self):
        g = PTG("x")
        assert g.critical_path(unit_time) == []
        assert g.critical_path_length(unit_time) == 0.0
