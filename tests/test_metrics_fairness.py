"""Tests for the slowdown / unfairness metrics (Eq. 3-5 of the paper)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.metrics.fairness import average_slowdown, slowdown, slowdowns, unfairness


class TestSlowdown:
    def test_definition(self):
        assert slowdown(50.0, 100.0) == pytest.approx(0.5)
        assert slowdown(100.0, 100.0) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            slowdown(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            slowdown(10.0, 0.0)

    def test_dict_version(self):
        own = {"a": 10.0, "b": 20.0}
        multi = {"a": 20.0, "b": 20.0}
        assert slowdowns(own, multi) == {"a": 0.5, "b": 1.0}

    def test_dict_version_mismatched_keys(self):
        with pytest.raises(ConfigurationError):
            slowdowns({"a": 1.0}, {"b": 1.0})

    def test_dict_version_empty(self):
        with pytest.raises(ConfigurationError):
            slowdowns({}, {})


class TestAverageSlowdown:
    def test_mapping_and_sequence(self):
        assert average_slowdown({"a": 0.5, "b": 1.0}) == pytest.approx(0.75)
        assert average_slowdown([0.5, 1.0]) == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            average_slowdown([])


class TestUnfairness:
    def test_perfectly_fair_is_zero(self):
        assert unfairness([0.5, 0.5, 0.5]) == pytest.approx(0.0)

    def test_paper_example(self):
        """Section 7's worked example: 8 apps at slowdown 1, 2 at 0.2.

        The average slowdown is 0.84 and the unfairness is
        8 * |1 - 0.84| + 2 * |0.2 - 0.84| = 2.56.
        """
        values = [1.0] * 8 + [0.2] * 2
        assert average_slowdown(values) == pytest.approx(0.84)
        assert unfairness(values) == pytest.approx(2.56)

    def test_grows_with_spread(self):
        narrow = unfairness([0.5, 0.6, 0.5, 0.6])
        wide = unfairness([0.1, 1.0, 0.1, 1.0])
        assert wide > narrow

    def test_grows_with_application_count(self):
        few = unfairness([1.0, 0.2])
        many = unfairness([1.0, 0.2] * 5)
        assert many > few

    def test_accepts_mapping(self):
        assert unfairness({"a": 1.0, "b": 0.5}) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            unfairness([])
