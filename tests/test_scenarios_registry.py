"""Tests for the scenario plugin registries."""

import pytest

from repro.allocation.scrap import ScrapMaxAllocator
from repro.constraints.registry import STRATEGY_NAMES
from repro.exceptions import ConfigurationError
from repro.mapping.ready_list import ReadyListMapper
from repro.scenarios.registry import (
    ALLOCATORS,
    FAMILIES,
    MAPPERS,
    PLATFORMS,
    REGISTRIES,
    STRATEGIES,
    Registry,
)


class TestRegistry:
    def test_register_and_create(self):
        registry = Registry("thing")
        registry.register("one", lambda: 1, description="the number one")
        assert registry.create("one") == 1
        assert registry.names() == ["one"]
        assert registry.describe() == {"one": "the number one"}

    def test_lookup_is_case_insensitive(self):
        registry = Registry("thing")
        registry.register("Mixed-Case", lambda: "x")
        assert registry.canonical("mixed-case") == "Mixed-Case"
        assert "MIXED-CASE" in registry

    def test_unknown_name_lists_available_entries(self):
        registry = Registry("gadget")
        registry.register("a", lambda: None)
        registry.register("b", lambda: None)
        with pytest.raises(ConfigurationError) as err:
            registry.create("c")
        message = str(err.value)
        assert "gadget" in message and "'c'" in message
        assert "a" in message and "b" in message

    def test_duplicate_registration_refused_unless_replace(self):
        registry = Registry("thing")
        registry.register("x", lambda: 1)
        with pytest.raises(ConfigurationError):
            registry.register("x", lambda: 2)
        registry.register("x", lambda: 2, replace=True)
        assert registry.create("x") == 2

    def test_decorator_registration(self):
        registry = Registry("thing")

        @registry.register("decorated", description="via decorator")
        def make():
            return "made"

        assert registry.create("decorated") == "made"
        assert make() == "made"  # the decorator returns the callable

    def test_empty_name_refused(self):
        with pytest.raises(ConfigurationError):
            Registry("thing").register("  ", lambda: None)

    def test_len_and_iter(self):
        registry = Registry("thing")
        registry.register("a", lambda: None)
        registry.register("b", lambda: None)
        assert len(registry) == 2
        assert list(registry) == ["a", "b"]


class TestBuiltinRegistries:
    def test_allocator_entries(self):
        assert ALLOCATORS.names() == ["cpa", "hcpa", "scrap", "scrap-max"]
        assert isinstance(ALLOCATORS.create("scrap-max"), ScrapMaxAllocator)

    def test_mapper_entries_accept_packing(self):
        assert MAPPERS.names() == ["ready-list", "global-order"]
        mapper = MAPPERS.create("ready-list", enable_packing=False)
        assert isinstance(mapper, ReadyListMapper)
        assert mapper.enable_packing is False

    def test_strategies_fold_in_the_constraints_registry(self):
        assert STRATEGIES.names() == STRATEGY_NAMES
        strategy = STRATEGIES.create("WPS-width", family="fft")
        assert strategy.name == "WPS-width"
        assert strategy.mu == 0.3  # the paper's FFT value
        assert STRATEGIES.create("WPS-width", mu=0.9).mu == 0.9

    def test_platform_entries(self):
        assert PLATFORMS.names() == ["lille", "nancy", "rennes", "sophia", "grid5000"]
        lille = PLATFORMS.create("lille")
        assert lille.total_processors == 99
        composed = PLATFORMS.create("grid5000")
        assert len(composed) == 11
        assert composed.total_processors == 99 + 167 + 229 + 180

    def test_family_entries_generate_workloads(self):
        assert FAMILIES.names() == ["random", "fft", "strassen", "mixed"]
        ptgs = FAMILIES.create("mixed", n_ptgs=3, seed=5, max_tasks=10)
        assert len(ptgs) == 3
        assert len({p.name for p in ptgs}) == 3

    def test_registries_index(self):
        assert sorted(REGISTRIES) == [
            "allocators", "arrivals", "executors", "families", "faults",
            "mappers", "platforms", "strategies",
        ]
        assert REGISTRIES["allocators"] is ALLOCATORS
