"""Tests for the Allocation data structure."""

import pytest

from repro.allocation.base import Allocation
from repro.allocation.reference import ReferenceCluster
from repro.exceptions import AllocationError

from tests.conftest import make_diamond_ptg


@pytest.fixture
def allocation(small_platform, diamond_ptg):
    return Allocation(diamond_ptg, ReferenceCluster.of(small_platform), beta=0.5)


class TestBasics:
    def test_initial_allocation_is_one_everywhere(self, allocation, diamond_ptg):
        assert all(allocation.processors(t.task_id) == 1 for t in diamond_ptg.tasks())
        assert len(allocation) == diamond_ptg.n_tasks

    def test_set_and_increment(self, allocation):
        allocation.set_processors(1, 4)
        assert allocation.processors(1) == 4
        allocation.increment(1)
        assert allocation.processors(1) == 5

    def test_unknown_task_rejected(self, allocation):
        with pytest.raises(AllocationError):
            allocation.processors(99)
        with pytest.raises(AllocationError):
            allocation.set_processors(99, 2)

    def test_invalid_values_rejected(self, allocation):
        with pytest.raises(AllocationError):
            allocation.set_processors(1, 0)
        with pytest.raises(AllocationError):
            allocation.set_processors(1, 10**6)

    def test_invalid_beta_rejected(self, small_platform, diamond_ptg):
        with pytest.raises(Exception):
            Allocation(diamond_ptg, ReferenceCluster.of(small_platform), beta=0.0)

    def test_as_dict_is_copy(self, allocation):
        d = allocation.as_dict()
        d[0] = 99
        assert allocation.processors(0) == 1

    def test_copy_independent(self, allocation):
        clone = allocation.copy()
        clone.set_processors(0, 3)
        assert allocation.processors(0) == 1
        assert clone.beta == allocation.beta


class TestDerivedQuantities:
    def test_task_time_uses_reference_speed(self, allocation, diamond_ptg):
        task = diamond_ptg.task(0)
        expected = task.execution_time(1, allocation.reference.speed_flops)
        assert allocation.task_time(task) == pytest.approx(expected)

    def test_total_area_increases_with_allocation(self, allocation, diamond_ptg):
        base = allocation.total_area()
        allocation.set_processors(1, 8)
        assert allocation.total_area() > base  # alpha > 0 so area grows

    def test_critical_path_shrinks_with_allocation(self, allocation):
        before = allocation.critical_path_length()
        allocation.set_processors(0, 6)
        allocation.set_processors(1, 6)
        allocation.set_processors(3, 6)
        assert allocation.critical_path_length() < before

    def test_critical_path_tasks(self, allocation):
        path = allocation.critical_path()
        assert path[0] == 0 and path[-1] == 3

    def test_level_power(self, allocation, diamond_ptg):
        # level 1 holds tasks 1 and 2, one reference processor each
        assert allocation.level_power(1) == pytest.approx(
            2 * allocation.reference.speed_gflops
        )
        with pytest.raises(AllocationError):
            allocation.level_power(99)

    def test_level_powers_cover_all_levels(self, allocation, diamond_ptg):
        powers = allocation.level_powers()
        assert set(powers) == {0, 1, 2}

    def test_average_power_positive(self, allocation):
        assert allocation.average_power() > 0

    def test_cluster_translation(self, allocation, small_platform, diamond_ptg):
        task = diamond_ptg.task(0)
        allocation.set_processors(0, 8)
        fast = small_platform.cluster(small_platform.cluster_names()[1])
        procs = allocation.cluster_processors(task, fast)
        assert 1 <= procs <= fast.num_processors
        time = allocation.cluster_time(task, fast)
        assert time == pytest.approx(task.execution_time(procs, fast.speed_flops))

    def test_synthetic_tasks_do_not_count(self, small_platform):
        from repro.dag.graph import PTG
        from repro.dag.task import Task

        g = PTG("with-synthetic")
        g.add_task(Task(0, 1e9, 0.1))
        g.add_task(Task(1, 1e9, 0.1))
        g.ensure_single_entry_exit()  # no-op here (already single) but keep general
        alloc = Allocation(g, ReferenceCluster.of(small_platform))
        synth = Task.synthetic(42)
        assert alloc.reference is not None
        # areas/powers of synthetic tasks are zero by construction
        assert synth.area(4, 1e9) == 0.0
