"""Tests for the multi-DAG aggregation baseline."""

import pytest

from repro.baselines.aggregation import AggregationScheduler, aggregate_ptgs
from repro.baselines.heft import HEFTScheduler
from repro.exceptions import MappingError

from tests.conftest import make_chain_ptg, make_diamond_ptg


class TestAggregatePtgs:
    def test_composite_contains_all_tasks(self, random_workload):
        composite, back_map = aggregate_ptgs(random_workload)
        total = sum(p.n_tasks for p in random_workload)
        assert len(back_map) == total
        assert composite.n_tasks >= total  # plus glue entry/exit
        composite.validate()

    def test_back_map_covers_every_original_task(self, random_workload):
        _, back_map = aggregate_ptgs(random_workload)
        expected = {
            (p.name, t.task_id) for p in random_workload for t in p.tasks()
        }
        assert set(back_map.values()) == expected

    def test_single_entry_and_exit(self, random_workload):
        composite, _ = aggregate_ptgs(random_workload)
        assert len(composite.entry_tasks()) == 1
        assert len(composite.exit_tasks()) == 1

    def test_edges_preserved(self):
        a = make_diamond_ptg("a")
        b = make_chain_ptg("b", n=3)
        composite, back_map = aggregate_ptgs([a, b])
        reverse = {v: k for k, v in back_map.items()}
        for src, dst, _ in a.edges():
            assert composite.has_edge(reverse[("a", src)], reverse[("a", dst)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(MappingError):
            aggregate_ptgs([make_chain_ptg("x"), make_chain_ptg("x")])

    def test_empty_rejected(self):
        with pytest.raises(MappingError):
            aggregate_ptgs([])


class TestAggregationScheduler:
    def test_schedules_every_application(self, medium_platform, random_workload):
        schedule = AggregationScheduler().schedule(random_workload, medium_platform)
        for ptg in random_workload:
            assert len(schedule.entries_of(ptg.name)) == ptg.n_tasks
        schedule.validate_no_overlap()

    def test_precedences_respected_per_application(self, medium_platform, random_workload):
        schedule = AggregationScheduler().schedule(random_workload, medium_platform)
        schedule.validate_precedences(random_workload)

    def test_alternative_inner_scheduler(self, medium_platform, random_workload):
        schedule = AggregationScheduler(inner=HEFTScheduler()).schedule(
            random_workload, medium_platform
        )
        assert all(entry.num_processors == 1 for entry in schedule)

    def test_makespans_positive(self, medium_platform, random_workload):
        schedule = AggregationScheduler().schedule(random_workload, medium_platform)
        for name, makespan in schedule.makespans().items():
            assert makespan > 0
