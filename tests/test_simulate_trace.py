"""Tests for the execution trace / Gantt rendering utilities."""

import pytest

from repro.allocation.scrap import ScrapMaxAllocator
from repro.exceptions import SimulationError
from repro.mapping.base import AllocatedPTG
from repro.mapping.ready_list import ReadyListMapper
from repro.simulate.executor import ScheduleExecutor
from repro.simulate.trace import (
    application_gantt,
    cluster_load_profile,
    report_to_csv,
    report_to_rows,
    schedule_to_rows,
)


@pytest.fixture
def executed(medium_platform, random_workload):
    allocated = [
        AllocatedPTG(p, ScrapMaxAllocator().allocate(p, medium_platform, beta=1 / 3))
        for p in random_workload
    ]
    schedule = ReadyListMapper().map(allocated, medium_platform)
    report = ScheduleExecutor(medium_platform).execute(random_workload, schedule)
    return schedule, report


class TestRows:
    def test_report_rows_cover_every_task(self, executed, random_workload):
        _, report = executed
        rows = report_to_rows(report)
        assert len(rows) == sum(p.n_tasks for p in random_workload)
        assert all(row["finish"] >= row["start"] for row in rows)

    def test_rows_sorted_by_start(self, executed):
        _, report = executed
        rows = report_to_rows(report)
        starts = [row["start"] for row in rows]
        assert starts == sorted(starts)

    def test_schedule_rows(self, executed, random_workload):
        schedule, _ = executed
        rows = schedule_to_rows(schedule)
        assert len(rows) == sum(p.n_tasks for p in random_workload)
        assert all("reference_processors" in row for row in rows)

    def test_csv_round_trip(self, executed):
        _, report = executed
        text = report_to_csv(report)
        lines = text.strip().splitlines()
        assert lines[0].startswith("application,")
        assert len(lines) == len(report.records) + 1

    def test_csv_empty_report(self, medium_platform):
        from repro.simulate.report import SimulationReport

        assert report_to_csv(SimulationReport(platform_name="x")) == ""


class TestGantt:
    def test_one_bar_per_application(self, executed, random_workload):
        _, report = executed
        text = application_gantt(report, width=40)
        lines = text.splitlines()
        assert len(lines) == len(random_workload) + 1
        assert all("#" in line for line in lines[1:])

    def test_width_validation(self, executed):
        _, report = executed
        with pytest.raises(SimulationError):
            application_gantt(report, width=2)


class TestLoadProfile:
    def test_counts_bounded_by_cluster_size(self, executed, medium_platform):
        _, report = executed
        text = cluster_load_profile(report, medium_platform, samples=6)
        assert "cluster load" in text
        for cluster in medium_platform:
            assert cluster.name in text

    def test_sample_validation(self, executed, medium_platform):
        _, report = executed
        with pytest.raises(SimulationError):
            cluster_load_profile(report, medium_platform, samples=0)
