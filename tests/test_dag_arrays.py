"""Unit tests of the :class:`repro.dag.arrays.DagArrays` compilation."""

import numpy as np
import pytest

from repro.dag import PTG, DagArrays, Task, compile_arrays
from repro.dag.generator import RandomPTGConfig, generate_random_ptg
from repro.exceptions import InvalidGraphError


def diamond():
    """entry(0) -> {1, 2} -> exit(3), with distinct costs."""
    g = PTG("diamond")
    g.add_task(Task(0, 1e9, 0.0))
    g.add_task(Task(1, 2e9, 0.1))
    g.add_task(Task(2, 4e9, 0.2))
    g.add_task(Task(3, 1e9, 0.0))
    g.add_edge(0, 1, 8.0)
    g.add_edge(0, 2, 8.0)
    g.add_edge(1, 3, 8.0)
    g.add_edge(2, 3, 8.0)
    return g


class TestCompilation:
    def test_basic_shape(self):
        arrays = diamond().arrays()
        assert arrays.n_tasks == 4
        assert arrays.n_edges == 4
        assert arrays.depth == 3
        assert list(arrays.task_ids) == [0, 1, 2, 3]
        assert arrays.index_of == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_csr_adjacency_sorted_by_tid(self):
        arrays = diamond().arrays()
        assert list(arrays.successors_of(0)) == [1, 2]
        assert list(arrays.predecessors_of(3)) == [1, 2]
        assert list(arrays.successors_of(3)) == []
        assert list(arrays.entries) == [0]
        assert list(arrays.exits) == [3]

    def test_levels_match_graph(self):
        g = generate_random_ptg(5, RandomPTGConfig(n_tasks=20))
        g.ensure_single_entry_exit()
        arrays = g.arrays()
        levels = g.precedence_levels()
        for i, tid in enumerate(arrays.task_ids_tuple):
            assert arrays.levels_tuple[i] == levels[tid]
        by_level = g.tasks_by_level()
        for level, tids in by_level.items():
            members = [arrays.task_ids_tuple[i] for i in arrays.level_tuples[level]]
            assert members == tids  # exact tasks_by_level order

    def test_cached_and_invalidated_on_mutation(self):
        g = diamond()
        first = g.arrays()
        assert g.arrays() is first  # cached
        g.add_task(Task(9, 1e9, 0.0))
        g.add_edge(3, 9, 0.0)
        second = g.arrays()
        assert second is not first
        assert second.n_tasks == 5

    def test_empty_graph_rejected(self):
        with pytest.raises(InvalidGraphError):
            compile_arrays(PTG("empty"))

    def test_cycle_rejected(self):
        g = PTG("cycle")
        g.add_task(Task(0, 1e9, 0.0))
        g.add_task(Task(1, 1e9, 0.0))
        g.add_edge(0, 1, 0.0)
        g.add_edge(1, 0, 0.0)
        with pytest.raises(InvalidGraphError):
            g.arrays()

    def test_level_slice_bounds(self):
        arrays = diamond().arrays()
        with pytest.raises(InvalidGraphError):
            arrays.level_slice(99)


class TestBottomLevels:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_graph_dp_bitwise(self, seed):
        g = generate_random_ptg(seed, RandomPTGConfig(n_tasks=20))
        g.ensure_single_entry_exit()
        arrays = g.arrays()
        time_fn = lambda t: t.execution_time(1, 4e9)
        expected = g.bottom_levels(time_fn)
        durations = np.array([time_fn(t) for t in g.tasks()])
        vectorized = arrays.bottom_levels(durations)
        scalar = arrays.bottom_levels_py(durations.tolist())
        for i, tid in enumerate(arrays.task_ids_tuple):
            assert vectorized[i] == expected[tid]  # exact, no tolerance
            assert scalar[i] == expected[tid]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_critical_path_matches_graph_walk(self, seed):
        g = generate_random_ptg(seed, RandomPTGConfig(n_tasks=20))
        g.ensure_single_entry_exit()
        arrays = g.arrays()
        time_fn = lambda t: t.execution_time(1, 4e9)
        expected = g.critical_path(time_fn)
        durations = np.array([time_fn(t) for t in g.tasks()])
        bl = arrays.bottom_levels(durations)
        vectorized = [arrays.task_ids_tuple[i] for i in arrays.critical_path(bl)]
        scalar = [
            arrays.task_ids_tuple[i] for i in arrays.critical_path_py(bl.tolist())
        ]
        assert vectorized == expected
        assert scalar == expected
        assert arrays.critical_path_length(durations) == g.critical_path_length(time_fn)

    def test_tie_break_prefers_smallest_tid(self):
        # two parallel middle tasks with identical costs: the reference
        # walk picks the smaller task id
        g = PTG("tie")
        g.add_task(Task(0, 1e9, 0.0))
        g.add_task(Task(5, 2e9, 0.0))
        g.add_task(Task(3, 2e9, 0.0))
        g.add_task(Task(7, 1e9, 0.0))
        for mid in (5, 3):
            g.add_edge(0, mid, 0.0)
            g.add_edge(mid, 7, 0.0)
        time_fn = lambda t: t.execution_time(1, 1e9)
        arrays = g.arrays()
        durations = np.array([time_fn(t) for t in g.tasks()])
        bl = arrays.bottom_levels(durations)
        path = [arrays.task_ids_tuple[i] for i in arrays.critical_path_py(bl.tolist())]
        assert path == g.critical_path(time_fn) == [0, 3, 7]
