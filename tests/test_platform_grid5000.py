"""Tests for the Grid'5000 Table 1 catalogue (Experiment E1)."""

import pytest

from repro.exceptions import InvalidPlatformError
from repro.platform import grid5000


class TestTable1Catalogue:
    """The numbers of Table 1 and of Section 2 of the paper."""

    def test_four_sites(self):
        sites = grid5000.all_sites()
        assert [p.name for p in sites] == ["lille", "nancy", "rennes", "sophia"]

    @pytest.mark.parametrize(
        "site,expected_procs",
        [("lille", 99), ("nancy", 167), ("rennes", 229), ("sophia", 180)],
    )
    def test_total_processors(self, site, expected_procs):
        assert grid5000.site(site).total_processors == expected_procs

    @pytest.mark.parametrize(
        "site,expected_het",
        [("lille", 20.2), ("nancy", 6.1), ("rennes", 36.8), ("sophia", 34.7)],
    )
    def test_heterogeneity_percent(self, site, expected_het):
        assert grid5000.site(site).heterogeneity_percent == pytest.approx(
            expected_het, abs=0.1
        )

    def test_cluster_count_per_site(self):
        assert len(grid5000.lille()) == 3
        assert len(grid5000.nancy()) == 2
        assert len(grid5000.rennes()) == 3
        assert len(grid5000.sophia()) == 3

    @pytest.mark.parametrize(
        "cluster,procs,speed",
        [
            ("chuque", 53, 3.647),
            ("chti", 20, 4.311),
            ("chicon", 26, 4.384),
            ("grillon", 47, 3.379),
            ("grelon", 120, 3.185),
            ("parasol", 64, 3.573),
            ("paravent", 99, 3.364),
            ("paraquad", 66, 4.603),
            ("azur", 74, 3.258),
            ("helios", 56, 3.675),
            ("sol", 50, 4.389),
        ],
    )
    def test_individual_cluster_rows(self, cluster, procs, speed):
        for platform in grid5000.all_sites():
            if cluster in platform:
                c = platform.cluster(cluster)
                assert c.num_processors == procs
                assert c.speed_gflops == speed
                return
        pytest.fail(f"cluster {cluster} not found in any site")


class TestTopologies:
    def test_shared_switch_sites(self):
        for site in ("lille", "rennes"):
            platform = grid5000.site(site)
            names = platform.cluster_names()
            assert platform.topology.shares_switch(names[0], names[1])

    def test_per_cluster_switch_sites(self):
        for site in ("nancy", "sophia"):
            platform = grid5000.site(site)
            names = platform.cluster_names()
            assert not platform.topology.shares_switch(names[0], names[1])


class TestLookup:
    def test_case_insensitive(self):
        assert grid5000.site("Rennes").name == "rennes"

    def test_unknown_site(self):
        with pytest.raises(InvalidPlatformError):
            grid5000.site("parapluie")

    def test_site_names_order(self):
        assert grid5000.site_names() == ["lille", "nancy", "rennes", "sophia"]
