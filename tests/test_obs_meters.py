"""Metrics registry: counters, gauges, histogram bucket edges and quantiles."""

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import meters
from repro.obs.meters import (
    DEFAULT_COUNT_EDGES,
    DEFAULT_LATENCY_EDGES,
    Histogram,
    MetricsRegistry,
)


def test_counter_accumulates_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ConfigurationError):
        counter.inc(-1)


def test_gauge_tracks_last_value_and_maximum():
    registry = MetricsRegistry()
    gauge = registry.gauge("g")
    gauge.set(3)
    gauge.set(7)
    gauge.set(2)
    assert gauge.value == 2.0
    assert gauge.max == 7.0


def test_registry_returns_same_meter_per_name():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    assert registry.gauge("y") is registry.gauge("y")
    assert registry.histogram("z") is registry.histogram("z")


def test_histogram_bucket_edges_are_inclusive_upper_bounds():
    h = Histogram(edges=(1.0, 2.0, 4.0))
    for value in (0.5, 1.0, 1.5, 2.0, 4.0, 5.0):
        h.observe(value)
    # values land in the first bucket whose edge >= value; 5.0 overflows
    assert h.bucket_counts == [2, 2, 1]
    assert h.overflow == 1
    assert h.count == 6
    assert h.min == 0.5
    assert h.max == 5.0


def test_histogram_rejects_bad_edges():
    with pytest.raises(ConfigurationError):
        Histogram(edges=())
    with pytest.raises(ConfigurationError):
        Histogram(edges=(1.0, 1.0))
    with pytest.raises(ConfigurationError):
        Histogram(edges=(2.0, 1.0))


def test_histogram_quantiles_interpolate_within_buckets():
    h = Histogram(edges=(0.1, 1.0, 10.0))
    for value in (0.05, 0.2, 0.3, 5.0):
        h.observe(value)
    assert h.quantile(0.0) == pytest.approx(0.05)  # min observed value
    # rank 2 of 4 falls in the (0.1, 1.0] bucket: 0.1 + 0.5 * 0.9
    assert h.quantile(0.5) == pytest.approx(0.55)
    assert h.quantile(1.0) == pytest.approx(10.0)
    with pytest.raises(ConfigurationError):
        h.quantile(1.5)


def test_histogram_quantile_overflow_rank_returns_maximum():
    h = Histogram(edges=(1.0,))
    h.observe(0.5)
    h.observe(100.0)
    assert h.quantile(1.0) == 100.0


def test_empty_histogram_quantile_and_mean_are_zero():
    h = Histogram(edges=(1.0,))
    assert h.quantile(0.5) == 0.0
    assert h.mean == 0.0


def test_histogram_merge_requires_identical_edges():
    a = Histogram(edges=(1.0, 2.0))
    b = Histogram(edges=(1.0, 2.0))
    a.observe(0.5)
    b.observe(1.5)
    b.observe(9.0)
    a.merge(b)
    assert a.count == 3
    assert a.bucket_counts == [1, 1]
    assert a.overflow == 1
    assert a.min == 0.5 and a.max == 9.0
    with pytest.raises(ConfigurationError):
        a.merge(Histogram(edges=(1.0, 3.0)))


def test_histogram_dict_round_trip_including_empty():
    h = Histogram(edges=(0.5, 1.0))
    h.observe(0.25)
    h.observe(2.0)
    clone = Histogram.from_dict(h.to_dict())
    assert clone.to_dict() == h.to_dict()
    empty = Histogram.from_dict(Histogram(edges=(1.0,)).to_dict())
    assert empty.count == 0
    assert empty.to_dict()["min"] is None


def test_snapshot_lists_every_meter_sorted():
    registry = MetricsRegistry()
    registry.counter("b.count").inc()
    registry.counter("a.count").inc(2)
    registry.gauge("depth").set(4)
    registry.histogram("lat", edges=(1.0,)).observe(0.5)
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["a.count", "b.count"]
    assert snapshot["counters"]["a.count"] == 2.0
    assert snapshot["gauges"]["depth"] == {"value": 4.0, "max": 4.0}
    assert snapshot["histograms"]["lat"]["count"] == 1


def test_default_edges_are_strictly_increasing():
    for edges in (DEFAULT_LATENCY_EDGES, DEFAULT_COUNT_EDGES):
        assert all(b > a for a, b in zip(edges, edges[1:]))


def test_module_active_is_none_by_default():
    assert meters.active() is None
