"""Tests for scenario spec serialisation, validation and content hashes."""

import json
import subprocess
import sys

import pytest

from repro.constraints.registry import STRATEGY_NAMES
from repro.exceptions import ConfigurationError
from repro.scenarios.spec import (
    PipelineSpec,
    ScenarioSpec,
    WorkloadSpec2,
    load_specs,
)


def default_spec(**overrides):
    kwargs = dict(
        platform="lille",
        workload=WorkloadSpec2(family="fft", n_ptgs=2, seed=3),
        pipeline=PipelineSpec(allocator="hcpa", packing=False),
        strategies=("S", "ES"),
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestRoundTrip:
    def test_to_from_dict_is_identity(self):
        spec = default_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_is_identity(self):
        spec = default_spec()
        text = json.dumps(spec.to_dict())
        assert ScenarioSpec.from_dict(json.loads(text)) == spec
        assert ScenarioSpec.from_dict(json.loads(text)).to_dict() == spec.to_dict()

    def test_defaults_round_trip(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert spec.strategies is None  # paper default set, resolved lazily

    def test_partial_dict_uses_defaults(self):
        spec = ScenarioSpec.from_dict({"workload": {"family": "strassen"}})
        assert spec.platform == "rennes"
        assert spec.workload.family == "strassen"
        assert spec.pipeline.allocator == "scrap-max"

    def test_strategies_accept_comma_separated_string(self):
        spec = ScenarioSpec.from_dict({"strategies": "S, ES"})
        assert spec.strategies == ("S", "ES")


class TestValidation:
    def test_unknown_scenario_key_raises(self):
        with pytest.raises(ConfigurationError, match="allowed"):
            ScenarioSpec.from_dict({"platfrom": "lille"})

    def test_unknown_workload_key_raises(self):
        with pytest.raises(ConfigurationError, match="workload spec"):
            ScenarioSpec.from_dict({"workload": {"n_tasks": 3}})

    def test_unknown_pipeline_key_raises(self):
        with pytest.raises(ConfigurationError, match="pipeline spec"):
            ScenarioSpec.from_dict({"pipeline": {"scheduler": "x"}})

    @pytest.mark.parametrize(
        "payload, expected_names",
        [
            ({"platform": "paris"}, ["lille", "nancy", "rennes", "sophia"]),
            ({"workload": {"family": "montecarlo"}}, ["random", "fft", "strassen"]),
            ({"pipeline": {"allocator": "heft"}}, ["cpa", "hcpa", "scrap"]),
            ({"pipeline": {"mapper": "insertion"}}, ["ready-list", "global-order"]),
            ({"strategies": ["S", "XYZ"]}, STRATEGY_NAMES[:3]),
        ],
    )
    def test_bad_names_list_available_entries(self, payload, expected_names):
        with pytest.raises(ConfigurationError) as err:
            ScenarioSpec.from_dict(payload)
        for name in expected_names:
            assert name in str(err.value)

    def test_bad_mu_raises(self):
        with pytest.raises(ConfigurationError):
            PipelineSpec(mu=1.5)

    def test_bad_n_ptgs_raises(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec2(n_ptgs=0)

    def test_empty_strategy_list_raises(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(strategies=())

    def test_names_are_canonicalised(self):
        spec = ScenarioSpec.from_dict(
            {"platform": "LILLE", "pipeline": {"allocator": "SCRAP-MAX"},
             "strategies": ["wps-width"]}
        )
        assert spec.platform == "lille"
        assert spec.pipeline.allocator == "scrap-max"
        assert spec.strategies == ("WPS-width",)

    def test_unsupported_format_version(self):
        with pytest.raises(ConfigurationError, match="format_version"):
            ScenarioSpec.from_dict({"format_version": 99})


class TestStrategyResolution:
    def test_default_is_the_paper_set(self):
        assert ScenarioSpec().resolved_strategy_names() == tuple(STRATEGY_NAMES)

    def test_strassen_drops_width_strategies(self):
        spec = ScenarioSpec(workload=WorkloadSpec2(family="strassen"))
        names = spec.resolved_strategy_names()
        assert names and all("width" not in n for n in names)

    def test_explicit_selection_wins(self):
        spec = ScenarioSpec(
            workload=WorkloadSpec2(family="strassen"), strategies=("PS-width",)
        )
        assert spec.resolved_strategy_names() == ("PS-width",)


class TestContentHash:
    def test_hash_is_stable_within_process(self):
        assert default_spec().content_hash() == default_spec().content_hash()

    def test_hash_is_independent_of_dict_key_order(self):
        payload = default_spec().to_dict()
        reordered = json.loads(
            json.dumps({k: payload[k] for k in reversed(list(payload))})
        )
        assert (
            ScenarioSpec.from_dict(reordered).content_hash()
            == default_spec().content_hash()
        )

    def test_hash_is_stable_across_process_restarts(self):
        spec = default_spec()
        script = (
            "import json, sys\n"
            "from repro.scenarios.spec import ScenarioSpec\n"
            "spec = ScenarioSpec.from_dict(json.loads(sys.argv[1]))\n"
            "print(spec.content_hash())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, json.dumps(spec.to_dict())],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src"}, cwd=str(__import__("pathlib").Path(__file__).parent.parent),
        )
        assert out.stdout.strip() == spec.content_hash()

    def test_hash_depends_on_every_axis(self):
        base = default_spec().content_hash()
        assert default_spec(platform="nancy").content_hash() != base
        assert default_spec(
            workload=WorkloadSpec2(family="fft", n_ptgs=2, seed=4)
        ).content_hash() != base
        assert default_spec(
            pipeline=PipelineSpec(allocator="scrap", packing=False)
        ).content_hash() != base
        assert default_spec(
            pipeline=PipelineSpec(allocator="hcpa", packing=True)
        ).content_hash() != base
        assert default_spec(strategies=("S",)).content_hash() != base

    def test_hash_resolves_the_default_strategy_set(self):
        """None-strategies and the explicit paper set hash identically."""
        implicit = ScenarioSpec(platform="lille")
        explicit = ScenarioSpec(platform="lille", strategies=tuple(STRATEGY_NAMES))
        assert implicit.content_hash() == explicit.content_hash()


class TestLoadSpecs:
    def test_single_object(self):
        assert len(load_specs({"platform": "lille"})) == 1

    def test_list_of_objects(self):
        specs = load_specs([{"platform": "lille"}, {"platform": "nancy"}])
        assert [s.platform for s in specs] == ["lille", "nancy"]

    def test_rejects_scalars(self):
        with pytest.raises(ConfigurationError):
            load_specs("not a spec")

    def test_rejects_non_object_entries(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            load_specs([3])
        with pytest.raises(ConfigurationError, match="JSON object"):
            load_specs([None])
        with pytest.raises(ConfigurationError, match="JSON object"):
            ScenarioSpec.from_dict({"workload": 3})


class TestServiceSection:
    def test_round_trips(self):
        spec = ScenarioSpec.from_dict(
            {"platform": "lille", "service": {"queue_depth": 8, "slo": 0.25}}
        )
        assert spec.service.queue_depth == 8
        assert spec.service.slo == 0.25
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_true_shorthand_means_defaults(self):
        from repro.service.spec import DEFAULT_QUEUE_DEPTH, DEFAULT_SLO_SECONDS

        spec = ScenarioSpec.from_dict({"service": True})
        assert spec.service.queue_depth == DEFAULT_QUEUE_DEPTH
        assert spec.service.slo == DEFAULT_SLO_SECONDS

    def test_absent_section_leaves_hash_unchanged(self):
        base = ScenarioSpec.from_dict({"platform": "lille"})
        with_service = ScenarioSpec.from_dict(
            {"platform": "lille", "service": {"queue_depth": 8}}
        )
        # the optional section extends the hash only when set, so every
        # pre-existing store key stays valid
        assert "service" not in base.to_dict()
        assert base.content_hash() != with_service.content_hash()
        assert base.content_hash() == ScenarioSpec(platform="lille").content_hash()

    def test_unknown_service_key_raises(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            ScenarioSpec.from_dict({"service": {"depth": 3}})

    def test_invalid_limits_raise(self):
        with pytest.raises(ConfigurationError, match="queue_depth"):
            ScenarioSpec.from_dict({"service": {"queue_depth": 0}})
        with pytest.raises(ConfigurationError, match="slo"):
            ScenarioSpec.from_dict({"service": {"slo": -1.0}})
        with pytest.raises(ConfigurationError, match="retry_after"):
            ScenarioSpec.from_dict({"service": {"retry_after": 0}})
