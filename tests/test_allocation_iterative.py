"""Tests for the shared iterative allocation machinery."""

import pytest

from repro.allocation.base import Allocation
from repro.allocation.iterative import (
    AreaConstraint,
    LevelConstraint,
    NoConstraint,
    run_iterative_allocation,
)
from repro.allocation.reference import ReferenceCluster
from repro.exceptions import AllocationError

from tests.conftest import make_chain_ptg, make_fork_join_ptg


class TestConstraintChecks:
    def test_no_constraint_never_violated(self, small_platform, chain_ptg):
        ref = ReferenceCluster.of(small_platform)
        alloc = Allocation(chain_ptg, ref)
        check = NoConstraint()
        assert not check.violated(alloc, chain_ptg.task(0))

    def test_area_constraint_detects_violation(self, small_platform, chain_ptg):
        ref = ReferenceCluster.of(small_platform)
        alloc = Allocation(chain_ptg, ref, beta=0.05)
        check = AreaConstraint(0.05, small_platform.total_power_gflops)
        # push one task to a huge allocation: average power explodes
        alloc.set_processors(0, ref.size)
        assert check.violated(alloc, chain_ptg.task(0))

    def test_level_constraint_detects_violation(self, small_platform, fork_join_ptg):
        ref = ReferenceCluster.of(small_platform)
        alloc = Allocation(fork_join_ptg, ref, beta=0.1)
        check = LevelConstraint(0.1, small_platform.total_power_gflops)
        # the middle level holds 5 tasks; give one of them a lot
        middle_task = fork_join_ptg.task(1)
        alloc.set_processors(1, ref.size // 2)
        assert check.violated(alloc, middle_task)

    def test_level_constraint_other_level_unaffected(self, small_platform, fork_join_ptg):
        ref = ReferenceCluster.of(small_platform)
        alloc = Allocation(fork_join_ptg, ref, beta=0.5)
        check = LevelConstraint(0.5, small_platform.total_power_gflops)
        alloc.set_processors(1, 4)
        # the entry task's level only holds the entry task
        assert not check.violated(alloc, fork_join_ptg.task(0))

    @pytest.mark.parametrize("cls", [AreaConstraint, LevelConstraint])
    def test_invalid_parameters(self, cls):
        with pytest.raises(AllocationError):
            cls(0.0, 100.0)
        with pytest.raises(AllocationError):
            cls(0.5, 0.0)


class TestIterativeLoop:
    def test_allocations_grow_from_one(self, small_platform):
        ptg = make_chain_ptg(n=3, flops=50e9, alpha=0.05)
        ref = ReferenceCluster.of(small_platform)
        alloc, stats = run_iterative_allocation(
            ptg, small_platform, ref, beta=1.0, constraint=NoConstraint()
        )
        assert stats.increments > 0
        assert any(alloc.processors(t.task_id) > 1 for t in ptg.tasks())

    def test_lower_beta_means_smaller_allocations(self, small_platform):
        ptg = make_fork_join_ptg(width=4, flops=50e9, alpha=0.05)
        ref = ReferenceCluster.of(small_platform)
        big, _ = run_iterative_allocation(
            ptg, small_platform, ref, beta=1.0,
            constraint=LevelConstraint(1.0, small_platform.total_power_gflops),
        )
        small, _ = run_iterative_allocation(
            ptg, small_platform, ref, beta=0.1,
            constraint=LevelConstraint(0.1, small_platform.total_power_gflops),
        )
        assert sum(small.as_dict().values()) <= sum(big.as_dict().values())

    def test_allocation_never_exceeds_cap(self, small_platform):
        ptg = make_chain_ptg(n=2, flops=500e9, alpha=0.0)
        ref = ReferenceCluster.of(small_platform)
        alloc, _ = run_iterative_allocation(
            ptg, small_platform, ref, beta=1.0, constraint=NoConstraint()
        )
        cap = ref.max_allocation(small_platform)
        assert all(p <= cap for p in alloc.as_dict().values())

    def test_invalid_beta(self, small_platform, chain_ptg):
        ref = ReferenceCluster.of(small_platform)
        with pytest.raises(AllocationError):
            run_iterative_allocation(
                ptg=chain_ptg, platform=small_platform, reference=ref,
                beta=0.0, constraint=NoConstraint(),
            )

    def test_invalid_efficiency_threshold(self, small_platform, chain_ptg):
        ref = ReferenceCluster.of(small_platform)
        with pytest.raises(AllocationError):
            run_iterative_allocation(
                ptg=chain_ptg, platform=small_platform, reference=ref,
                beta=1.0, constraint=NoConstraint(), efficiency_threshold=1.5,
            )

    def test_efficiency_threshold_limits_growth(self, small_platform):
        ptg = make_chain_ptg(n=2, flops=500e9, alpha=0.25)
        ref = ReferenceCluster.of(small_platform)
        unguarded, _ = run_iterative_allocation(
            ptg, small_platform, ref, beta=1.0, constraint=NoConstraint(),
            efficiency_threshold=0.0,
        )
        guarded, _ = run_iterative_allocation(
            ptg, small_platform, ref, beta=1.0, constraint=NoConstraint(),
            efficiency_threshold=0.5,
        )
        assert max(guarded.as_dict().values()) <= max(unguarded.as_dict().values())
        # with alpha = 0.25, efficiency >= 0.5 caps the allocation at
        # p <= (1 + alpha) / alpha = 5
        assert max(guarded.as_dict().values()) <= 5

    def test_stats_report_stopping_reason(self, small_platform):
        ptg = make_chain_ptg(n=3, flops=50e9, alpha=0.05)
        ref = ReferenceCluster.of(small_platform)
        _, stats = run_iterative_allocation(
            ptg, small_platform, ref, beta=1.0, constraint=NoConstraint()
        )
        assert (
            stats.stopped_by_balance
            or stats.stopped_by_saturation
            or stats.stopped_by_constraint
        )

    def test_synthetic_tasks_keep_one_processor(self, small_platform):
        ptg = make_fork_join_ptg(width=3, flops=50e9, alpha=0.05)
        # force synthetic entry/exit by adding parallel entries
        from repro.dag.task import Task

        ptg.add_task(Task(100, flops=50e9, alpha=0.05, data_elements=4e6))
        ptg.add_edge(100, ptg.n_tasks - 2)  # connect into the graph
        ptg.ensure_single_entry_exit()
        ref = ReferenceCluster.of(small_platform)
        alloc, _ = run_iterative_allocation(
            ptg, small_platform, ref, beta=1.0, constraint=NoConstraint()
        )
        for task in ptg.tasks():
            if task.is_synthetic:
                assert alloc.processors(task.task_id) == 1
