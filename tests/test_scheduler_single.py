"""Tests for the single-application scheduler (M_own computation)."""

import pytest

from repro.allocation.hcpa import HCPAAllocator
from repro.exceptions import ConfigurationError
from repro.mapping.global_order import GlobalOrderMapper
from repro.scheduler.single import SinglePTGScheduler

from tests.conftest import make_chain_ptg


class TestSinglePTGScheduler:
    def test_schedules_all_tasks(self, small_platform, small_random_ptg):
        result = SinglePTGScheduler().schedule(small_random_ptg, small_platform)
        assert len(result.schedule) == small_random_ptg.n_tasks
        assert result.makespan > 0

    def test_schedule_is_valid(self, small_platform, small_random_ptg):
        result = SinglePTGScheduler().schedule(small_random_ptg, small_platform)
        result.schedule.validate_no_overlap()
        result.schedule.validate_precedences([small_random_ptg])

    def test_makespan_convenience(self, small_platform, chain_ptg):
        scheduler = SinglePTGScheduler()
        assert scheduler.makespan(chain_ptg, small_platform) == pytest.approx(
            scheduler.schedule(chain_ptg, small_platform).makespan
        )

    def test_chain_makespan_close_to_critical_path(self, small_platform):
        ptg = make_chain_ptg(n=3, flops=8e9, alpha=0.0)
        result = SinglePTGScheduler().schedule(ptg, small_platform)
        # a chain with zero alpha can use many processors per task; the
        # makespan cannot beat the best possible critical path
        fastest = max(c.speed_flops * c.num_processors for c in small_platform)
        lower_bound = sum(t.flops for t in ptg.tasks()) / fastest
        assert result.makespan >= lower_bound

    def test_custom_components(self, small_platform, chain_ptg):
        scheduler = SinglePTGScheduler(
            allocator=HCPAAllocator(), mapper=GlobalOrderMapper(), beta=0.5
        )
        result = scheduler.schedule(chain_ptg, small_platform)
        assert result.allocation.beta == 0.5

    def test_invalid_beta(self):
        with pytest.raises(ConfigurationError):
            SinglePTGScheduler(beta=0.0)

    def test_none_ptg_rejected(self, small_platform):
        with pytest.raises(ConfigurationError):
            SinglePTGScheduler().schedule(None, small_platform)

    def test_larger_platform_not_slower(self, chain_ptg, small_platform, medium_platform):
        small = SinglePTGScheduler().makespan(chain_ptg, small_platform)
        medium = SinglePTGScheduler().makespan(chain_ptg, medium_platform)
        # the medium platform has faster clusters; the dedicated makespan
        # should not be worse
        assert medium <= small * 1.5
