"""Golden test: the event-driven online scheduler is bit-identical.

The ``repro.streaming`` rework of the online path (incremental
completion bookkeeping, chunked feeding) is a pure performance
refactor: for every strategy, allocator and packing mode it must emit
exactly the same schedule, betas, active sets and completion times as
the pre-refactor :class:`~repro.scheduler._reference.ReferenceOnlineScheduler`
on a fixed arrival list -- the mirror of ``test_mapping_golden.py`` for
the online layer.

Every comparison is **exact** (``==`` on floats, no tolerance).
"""

import numpy as np
import pytest

from repro.allocation.scrap import ScrapAllocator, ScrapMaxAllocator
from repro.constraints.registry import paper_strategies
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.platform import grid5000
from repro.scheduler._reference import ReferenceOnlineScheduler
from repro.scheduler.online import Arrival, OnlineConcurrentScheduler
from repro.streaming.engine import StreamSession
from repro.streaming.spec import ArrivalSpec, generate_arrivals


def assert_identical_results(fast, ref):
    """Schedules, betas, active sets and makespans must match bit-for-bit."""
    assert fast.betas == ref.betas
    assert fast.active_at_admission == ref.active_at_admission
    assert fast.strategy_name == ref.strategy_name
    assert [a.ptg.name for a in fast.arrivals] == [a.ptg.name for a in ref.arrivals]
    assert len(fast.schedule) == len(ref.schedule)
    for entry in fast.schedule:
        other = ref.schedule.entry(entry.ptg_name, entry.task_id)
        assert entry.cluster_name == other.cluster_name, (entry, other)
        assert entry.processors == other.processors, (entry, other)
        assert entry.start == other.start, (entry, other)
        assert entry.finish == other.finish, (entry, other)
        assert entry.reference_processors == other.reference_processors
    # the O(1) accessors agree with the reference's full re-scans
    assert fast.makespans() == ref.makespans()
    for name in ref.betas:
        assert fast.completion_time(name) == ref.completion_time(name)


@pytest.fixture(scope="module")
def workload():
    return make_workload(WorkloadSpec(family="random", n_ptgs=6, seed=13, max_tasks=20))


@pytest.fixture(scope="module")
def arrivals(workload):
    # staggered submissions including simultaneous ones (ties sort by name)
    times = [0.0, 0.0, 150.0, 400.0, 400.0, 900.0]
    return [Arrival(ptg, t) for ptg, t in zip(workload, times)]


class TestGoldenOnlineStrategies:
    @pytest.mark.parametrize("strategy", paper_strategies(), ids=lambda s: s.name)
    def test_online_bit_identical(self, arrivals, strategy):
        platform = grid5000.site("lille")
        fast = OnlineConcurrentScheduler(strategy).schedule(arrivals, platform)
        ref = ReferenceOnlineScheduler(strategy).schedule(arrivals, platform)
        assert_identical_results(fast, ref)


class TestGoldenOnlinePipelines:
    @pytest.mark.parametrize("packing", [True, False], ids=["packing", "no-packing"])
    @pytest.mark.parametrize(
        "allocator", [ScrapMaxAllocator, ScrapAllocator],
        ids=["scrap-max", "scrap"],
    )
    def test_pipeline_bit_identical(self, arrivals, allocator, packing):
        platform = grid5000.site("nancy")
        fast = OnlineConcurrentScheduler(
            allocator=allocator(), enable_packing=packing
        ).schedule(arrivals, platform)
        ref = ReferenceOnlineScheduler(
            allocator=allocator(), enable_packing=packing
        ).schedule(arrivals, platform)
        assert_identical_results(fast, ref)


class TestGoldenStreams:
    def test_poisson_stream_bit_identical(self):
        """A generated arrival stream schedules identically on both paths."""
        platform = grid5000.composed()
        spec = ArrivalSpec(
            process="poisson", rate=0.05, n_arrivals=20, seed=7,
            family="random", max_tasks=10,
        )
        stream = generate_arrivals(spec)
        fast = OnlineConcurrentScheduler().schedule(stream, platform)
        ref = ReferenceOnlineScheduler().schedule(stream, platform)
        assert_identical_results(fast, ref)

    def test_chunked_feeding_matches_batch_replay(self):
        """Feeding the stream in chunks equals replaying it in one batch."""
        platform = grid5000.site("sophia")
        spec = ArrivalSpec(
            process="mmpp", rate=0.05, n_arrivals=15, seed=4,
            family="random", max_tasks=10, burst=6.0,
        )
        stream = generate_arrivals(spec)
        session = StreamSession(platform)
        for start in range(0, len(stream), 4):
            session.feed(stream[start:start + 4])
        fast = session.result()
        ref = ReferenceOnlineScheduler().schedule(stream, platform)
        assert_identical_results(fast, ref)
