"""Tests for the experiment / campaign runner."""

import pytest

from repro.constraints.registry import strategy
from repro.exceptions import ConfigurationError
from repro.experiments.runner import (
    CampaignConfig,
    CampaignResult,
    compute_own_makespans,
    run_campaign,
    run_experiment,
)
from repro.experiments.workload import WorkloadSpec, make_workload
from repro.platform.builder import heterogeneous_platform


@pytest.fixture(scope="module")
def platform():
    return heterogeneous_platform((12, 16), (3.0, 4.0), name="exp-platform")


@pytest.fixture(scope="module")
def workload():
    return make_workload(WorkloadSpec("random", n_ptgs=3, seed=5, max_tasks=10))


class TestOwnMakespans:
    def test_one_value_per_application(self, platform, workload):
        own = compute_own_makespans(workload, platform)
        assert set(own) == {p.name for p in workload}
        assert all(v > 0 for v in own.values())


class TestRunExperiment:
    def test_outcomes_per_strategy(self, platform, workload):
        strategies = [strategy("S"), strategy("ES")]
        result = run_experiment(workload, platform, strategies, workload_label="t")
        assert set(result.outcomes) == {"S", "ES"}
        assert result.n_ptgs == 3
        for outcome in result.outcomes.values():
            assert set(outcome.makespans) == {p.name for p in workload}
            assert outcome.unfairness >= 0
            assert outcome.batch_makespan >= max(outcome.makespans.values()) - 1e-9

    def test_own_makespans_can_be_reused(self, platform, workload):
        own = compute_own_makespans(workload, platform)
        result = run_experiment(
            workload, platform, [strategy("ES")], own_makespans=own
        )
        assert result.own_makespans == own

    def test_batch_makespans_view(self, platform, workload):
        result = run_experiment(workload, platform, [strategy("S"), strategy("ES")])
        batch = result.batch_makespans()
        assert set(batch) == {"S", "ES"}

    def test_invalid_inputs(self, platform, workload):
        with pytest.raises(ConfigurationError):
            run_experiment([], platform, [strategy("ES")])
        with pytest.raises(ConfigurationError):
            run_experiment(workload, platform, [])


class TestCampaign:
    def test_small_campaign_aggregates(self, platform):
        config = CampaignConfig(
            family="random",
            ptg_counts=(2, 3),
            workloads_per_point=1,
            platforms=(platform,),
            strategy_names=("S", "ES"),
            base_seed=11,
            max_tasks=8,
        )
        result = run_campaign(config)
        assert isinstance(result, CampaignResult)
        assert result.ptg_counts() == [2, 3]
        assert set(result.strategy_names()) == {"S", "ES"}
        unfair = result.average_unfairness()
        relative = result.average_relative_makespan()
        for name in ("S", "ES"):
            assert len(unfair[name]) == 2
            assert len(relative[name]) == 2
            assert all(v >= 1.0 for v in relative[name])
        mean_app = result.average_mean_application_makespan()
        assert all(v > 0 for series in mean_app.values() for v in series)

    def test_progress_callback(self, platform):
        messages = []
        config = CampaignConfig(
            family="random", ptg_counts=(2,), workloads_per_point=1,
            platforms=(platform,), strategy_names=("ES",), max_tasks=8,
        )
        run_campaign(config, progress=messages.append)
        assert len(messages) == 1

    def test_strassen_config_drops_width_strategies(self):
        config = CampaignConfig(family="strassen")
        names = [s.name for s in config.resolved_strategies()]
        assert "WPS-width" not in names

    def test_default_platforms_are_grid5000(self):
        config = CampaignConfig()
        assert [p.name for p in config.resolved_platforms()] == [
            "lille", "nancy", "rennes", "sophia",
        ]

    def test_missing_count_query_raises(self, platform):
        result = CampaignResult(config=CampaignConfig())
        with pytest.raises(ConfigurationError):
            result._experiments_at(4)
