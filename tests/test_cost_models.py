"""Tests for repro.dag.cost_models (the paper's task cost model)."""

import math

import pytest

from repro.dag.cost_models import (
    ALPHA_MAX,
    A_FACTOR_MAX,
    A_FACTOR_MIN,
    AmdahlTaskModel,
    BYTES_PER_ELEMENT,
    ComplexityClass,
    MAX_DATA_ELEMENTS,
    MIN_DATA_ELEMENTS,
    communication_bytes,
    sample_a_factor,
    sample_alpha,
    sample_complexity,
    sample_data_elements,
    sequential_flops,
)
from repro.exceptions import ConfigurationError


class TestSequentialFlops:
    def test_linear(self):
        assert sequential_flops(ComplexityClass.LINEAR, 1000, a_factor=3) == 3000.0

    def test_log_linear(self):
        d = 1024
        expected = 5 * d * math.log2(d)
        assert sequential_flops(ComplexityClass.LOG_LINEAR, d, a_factor=5) == pytest.approx(expected)

    def test_matmul_ignores_a_factor(self):
        d = 10_000
        assert sequential_flops(ComplexityClass.MATMUL, d, a_factor=99) == pytest.approx(d**1.5)

    def test_invalid_data(self):
        with pytest.raises(ConfigurationError):
            sequential_flops(ComplexityClass.LINEAR, 0)

    def test_mixed_is_not_concrete(self):
        with pytest.raises(ConfigurationError):
            sequential_flops(ComplexityClass.MIXED, 100)


class TestCommunicationBytes:
    def test_eight_bytes_per_element(self):
        assert communication_bytes(1_000_000) == 8_000_000.0
        assert BYTES_PER_ELEMENT == 8

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            communication_bytes(-1)


class TestAmdahlModel:
    def test_fully_parallel(self):
        m = AmdahlTaskModel(flops=1e9, alpha=0.0)
        assert m.time(4, 1e9) == pytest.approx(0.25)
        assert m.speedup(4) == pytest.approx(4.0)
        assert m.efficiency(4) == pytest.approx(1.0)

    def test_fully_sequential(self):
        m = AmdahlTaskModel(flops=1e9, alpha=1.0)
        assert m.time(100, 1e9) == pytest.approx(1.0)
        assert m.speedup(100) == pytest.approx(1.0)

    def test_time_decreases_with_processors(self):
        m = AmdahlTaskModel(flops=1e9, alpha=0.2)
        times = [m.time(p, 1e9) for p in range(1, 20)]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_time_scales_with_speed(self):
        m = AmdahlTaskModel(flops=1e9, alpha=0.1)
        assert m.time(2, 2e9) == pytest.approx(m.time(2, 1e9) / 2)

    def test_amdahl_limit(self):
        m = AmdahlTaskModel(flops=1e9, alpha=0.25)
        assert m.time(10**6, 1e9) == pytest.approx(0.25, rel=1e-3)

    def test_area_grows_with_processors_when_alpha_positive(self):
        m = AmdahlTaskModel(flops=1e9, alpha=0.2)
        assert m.area(10, 1e9) > m.area(1, 1e9)

    def test_area_constant_when_alpha_zero(self):
        m = AmdahlTaskModel(flops=1e9, alpha=0.0)
        assert m.area(10, 1e9) == pytest.approx(m.area(1, 1e9))

    def test_marginal_gain_positive_and_decreasing(self):
        m = AmdahlTaskModel(flops=1e9, alpha=0.1)
        gains = [m.marginal_gain(p, 1e9) for p in range(1, 10)]
        assert all(g > 0 for g in gains)
        assert all(a > b for a, b in zip(gains, gains[1:]))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            AmdahlTaskModel(flops=0, alpha=0.1)
        with pytest.raises(ConfigurationError):
            AmdahlTaskModel(flops=1e9, alpha=1.5)
        m = AmdahlTaskModel(flops=1e9, alpha=0.1)
        with pytest.raises(ConfigurationError):
            m.time(0, 1e9)
        with pytest.raises(ConfigurationError):
            m.time(1, 0)


class TestSampling:
    def test_data_elements_within_paper_bounds(self, rng):
        for _ in range(50):
            d = sample_data_elements(rng)
            assert MIN_DATA_ELEMENTS <= d <= MAX_DATA_ELEMENTS

    def test_a_factor_within_bounds(self, rng):
        for _ in range(50):
            a = sample_a_factor(rng)
            assert A_FACTOR_MIN <= a <= A_FACTOR_MAX

    def test_alpha_within_bounds(self, rng):
        for _ in range(50):
            alpha = sample_alpha(rng)
            assert 0.0 <= alpha <= ALPHA_MAX

    def test_alpha_invalid_bounds(self, rng):
        with pytest.raises(ConfigurationError):
            sample_alpha(rng, 0.5, 0.1)

    def test_complexity_concrete_passthrough(self, rng):
        assert (
            sample_complexity(rng, ComplexityClass.MATMUL) is ComplexityClass.MATMUL
        )

    def test_complexity_mixed_draws_concrete(self, rng):
        seen = {sample_complexity(rng, ComplexityClass.MIXED) for _ in range(100)}
        assert seen <= set(ComplexityClass.concrete())
        assert len(seen) >= 2

    def test_data_elements_invalid_bounds(self, rng):
        with pytest.raises(ConfigurationError):
            sample_data_elements(rng, 100, 10)
