"""Tests of the arrival-process generators."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios.registry import ARRIVALS
from repro.streaming.arrivals import (
    MMPPProcess,
    PoissonProcess,
    TraceProcess,
    load_trace,
)


class TestPoisson:
    def test_times_are_sorted_positive_and_reproducible(self):
        process = PoissonProcess(rate=0.5)
        a = process.times(200, rng=42)
        b = process.times(200, rng=42)
        assert np.array_equal(a, b)
        assert (a > 0).all()
        assert (np.diff(a) >= 0).all()

    def test_rate_controls_density(self):
        slow = PoissonProcess(rate=0.1).times(500, rng=1)
        fast = PoissonProcess(rate=10.0).times(500, rng=1)
        assert slow[-1] > fast[-1]
        # mean gap approximates 1/rate
        assert np.mean(np.diff(slow)) == pytest.approx(10.0, rel=0.25)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonProcess(rate=0.0)
        with pytest.raises(ConfigurationError):
            PoissonProcess(rate=1.0).times(0)


class TestMMPP:
    def test_times_are_sorted_and_reproducible(self):
        process = MMPPProcess(rate=0.2, burst=8.0, dwell=50.0)
        a = process.times(300, rng=7)
        b = process.times(300, rng=7)
        assert np.array_equal(a, b)
        assert (np.diff(a) >= 0).all()
        assert (a >= 0).all()

    def test_burstier_process_has_heavier_gap_tail_mix(self):
        """A strong burst phase yields a higher gap variance than Poisson."""
        calm = PoissonProcess(rate=0.2).times(2000, rng=3)
        bursty = MMPPProcess(rate=0.2, burst=20.0, dwell=100.0).times(2000, rng=3)
        cv = lambda gaps: np.std(gaps) / np.mean(gaps)  # noqa: E731
        assert cv(np.diff(bursty)) > cv(np.diff(calm))

    def test_default_dwell_derived_from_rate(self):
        assert MMPPProcess(rate=0.5).dwell == pytest.approx(20.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            MMPPProcess(burst=0.5)
        with pytest.raises(ConfigurationError):
            MMPPProcess(dwell=0.0)


class TestTrace:
    def test_replays_given_instants(self):
        process = TraceProcess([0.0, 1.0, 1.0, 5.5])
        assert process.times(3).tolist() == [0.0, 1.0, 1.0]

    def test_exhausted_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceProcess([1.0]).times(2)

    def test_unsorted_or_negative_traces_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceProcess([2.0, 1.0])
        with pytest.raises(ConfigurationError):
            TraceProcess([-1.0, 1.0])
        with pytest.raises(ConfigurationError):
            TraceProcess([])


class TestLoadTrace:
    def test_json_and_text_formats(self, tmp_path):
        json_file = tmp_path / "trace.json"
        json_file.write_text("[0.0, 2.5, 7]")
        assert load_trace(str(json_file)) == [0.0, 2.5, 7.0]
        text_file = tmp_path / "trace.txt"
        text_file.write_text("0.0\n# comment\n2.5\n\n7 # inline\n")
        assert load_trace(str(text_file)) == [0.0, 2.5, 7.0]

    def test_errors_are_configuration_errors(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_trace(str(tmp_path / "missing.txt"))
        bad = tmp_path / "bad.txt"
        bad.write_text("zero\n")
        with pytest.raises(ConfigurationError):
            load_trace(str(bad))
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("[1, 2")
        with pytest.raises(ConfigurationError):
            load_trace(str(bad_json))


class TestRegistry:
    def test_processes_registered_with_uniform_kwargs(self):
        assert ARRIVALS.names() == ["poisson", "mmpp", "trace"]
        poisson = ARRIVALS.create("poisson", rate=2.0, burst=9.0, dwell=None, trace=None)
        assert isinstance(poisson, PoissonProcess) and poisson.rate == 2.0
        mmpp = ARRIVALS.create("MMPP", rate=1.0, burst=9.0, dwell=3.0, trace=None)
        assert isinstance(mmpp, MMPPProcess) and mmpp.burst == 9.0
        trace = ARRIVALS.create("trace", rate=1.0, burst=1.0, dwell=None, trace=(0.0, 1.0))
        assert isinstance(trace, TraceProcess)
