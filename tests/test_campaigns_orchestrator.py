"""Tests for the campaign orchestrator: parallel fan-out, persistence, resume."""

import os

import pytest

from repro.campaigns.orchestrator import orchestrate, run_campaign_parallel
from repro.campaigns.pool import execute_shard, run_shards
from repro.campaigns.shards import ExperimentShard, make_shards
from repro.campaigns.store import CampaignStore
from repro.exceptions import CampaignError
from repro.experiments.runner import CampaignConfig, run_campaign
from repro.experiments.workload import WorkloadSpec
from repro.platform.builder import heterogeneous_platform


@pytest.fixture(scope="module")
def platform():
    return heterogeneous_platform((10, 14), (3.0, 4.0), name="orch-platform")


@pytest.fixture(scope="module")
def config(platform):
    return CampaignConfig(
        family="random",
        ptg_counts=(2, 3),
        workloads_per_point=2,
        platforms=(platform,),
        strategy_names=("S", "ES"),
        base_seed=17,
        max_tasks=8,
    )


@pytest.fixture(scope="module")
def serial(config):
    return run_campaign(config)


class TestExecuteShard:
    def test_matches_serial_experiment(self, config, serial):
        shard = make_shards(config)[0]
        outcome = execute_shard(shard)
        assert outcome.ok
        assert outcome.result == serial.experiments[0]
        assert outcome.workload is not None

    def test_failure_is_captured_not_raised(self, config, platform):
        shard = ExperimentShard(
            index=0,
            spec=WorkloadSpec("random", n_ptgs=2, seed=1, max_tasks=8),
            platform=platform,
            strategy_names=("no-such-strategy",),
        )
        outcome = execute_shard(shard)
        assert not outcome.ok
        assert outcome.result is None
        assert "no-such-strategy" in outcome.error


class TestRunShards:
    def test_outcomes_arrive_in_shard_order(self, config):
        shards = make_shards(config)
        outcomes = list(run_shards(shards, jobs=2))
        assert [o.index for o in outcomes] == [s.index for s in shards]
        assert [o.key for o in outcomes] == [s.key() for s in shards]

    def test_inline_and_parallel_agree(self, config):
        shards = make_shards(config)
        inline = [o.result for o in run_shards(shards, jobs=1)]
        parallel = [o.result for o in run_shards(shards, jobs=2)]
        assert inline == parallel


class TestParallelMatchesSerial:
    def test_aggregates_are_bit_identical(self, config, serial):
        result = run_campaign_parallel(config, jobs=2)
        assert result.average_unfairness() == serial.average_unfairness()
        assert (
            result.average_relative_makespan() == serial.average_relative_makespan()
        )
        assert (
            result.average_mean_application_makespan()
            == serial.average_mean_application_makespan()
        )

    def test_store_round_trip_is_bit_identical(self, config, serial, tmp_path):
        """Aggregates survive the JSONL round trip exactly."""
        run_campaign_parallel(config, store=str(tmp_path / "s"), jobs=2)
        # a fresh orchestration re-assembles everything from the store
        rebuilt = run_campaign_parallel(config, store=str(tmp_path / "s"), jobs=2)
        assert rebuilt.average_unfairness() == serial.average_unfairness()
        assert (
            rebuilt.average_relative_makespan() == serial.average_relative_makespan()
        )


class TestResume:
    def test_completed_shards_are_skipped(self, config, tmp_path):
        store = CampaignStore(tmp_path / "s")
        first = orchestrate(config, store=store, jobs=1)
        assert first.stats.executed_shards == first.stats.total_shards
        second = orchestrate(config, store=store, jobs=1)
        assert second.stats.executed_shards == 0
        assert second.stats.skipped_shards == second.stats.total_shards
        assert (
            second.result.average_unfairness() == first.result.average_unfairness()
        )

    def test_interrupted_run_completes_without_reexecution(
        self, config, serial, tmp_path
    ):
        """Drop all but one record, resume, and check only the rest re-runs."""
        store = CampaignStore(tmp_path / "s")
        orchestrate(config, store=store, jobs=1)
        with open(store.results_path, "r", encoding="utf-8") as handle:
            first_line = handle.readline()
        with open(store.results_path, "w", encoding="utf-8") as handle:
            handle.write(first_line)
        resumed = orchestrate(config, store=store, jobs=1)
        assert resumed.stats.skipped_shards == 1
        assert resumed.stats.executed_shards == resumed.stats.total_shards - 1
        assert resumed.result.average_unfairness() == serial.average_unfairness()

    def test_progress_reports_resume_and_labels(self, config, tmp_path):
        store = CampaignStore(tmp_path / "s")
        orchestrate(config, store=store, jobs=1)
        messages = []
        orchestrate(config, store=store, jobs=1, progress=messages.append)
        assert any("resuming" in m for m in messages)

    def test_warm_cache_serves_resumed_reference_makespans(self, config, tmp_path):
        store = CampaignStore(tmp_path / "s")
        orchestrate(config, store=store, jobs=1)
        # lose the results but keep the own-makespan cache: every reference
        # makespan of the re-run must come from the cache
        os.remove(store.results_path)
        rerun = orchestrate(config, store=store, jobs=1)
        assert rerun.stats.cache_misses == 0
        assert rerun.stats.cache_hits > 0
        assert rerun.stats.cache_hit_rate == 1.0


class TestStoreGuards:
    def test_mismatched_campaign_is_refused(self, config, platform, tmp_path):
        store = CampaignStore(tmp_path / "s")
        orchestrate(config, store=store, jobs=1)
        other = CampaignConfig(
            family="random", ptg_counts=(2,), workloads_per_point=1,
            platforms=(platform,), strategy_names=("S",), base_seed=99, max_tasks=8,
        )
        with pytest.raises(CampaignError):
            orchestrate(other, store=store, jobs=1)

    def test_populated_store_requires_resume(self, config, tmp_path):
        store = CampaignStore(tmp_path / "s")
        orchestrate(config, store=store, jobs=1)
        with pytest.raises(CampaignError):
            orchestrate(config, store=store, jobs=1, resume=False)


class TestFailureHandling:
    def test_failures_raise_after_all_shards_ran(self, platform, tmp_path, monkeypatch):
        """One bad shard fails the run, but good shards are persisted first."""
        config = CampaignConfig(
            family="random", ptg_counts=(2, 3), workloads_per_point=1,
            platforms=(platform,), strategy_names=("S",), base_seed=17, max_tasks=8,
        )
        shards = make_shards(config)
        from repro.campaigns import pool

        original = pool.run_experiment

        def flaky(ptgs, *args, **kwargs):
            if len(ptgs) == 3:
                raise RuntimeError("boom on the 3-PTG shard")
            return original(ptgs, *args, **kwargs)

        monkeypatch.setattr(pool, "run_experiment", flaky)
        store = CampaignStore(tmp_path / "s")
        with pytest.raises(CampaignError, match="1 shard"):
            orchestrate(config, store=store, jobs=1)
        assert store.completed_keys() == {shards[0].key()}
        monkeypatch.undo()
        resumed = orchestrate(config, store=store, jobs=1)
        assert resumed.stats.skipped_shards == 1
        assert resumed.stats.executed_shards == 1
