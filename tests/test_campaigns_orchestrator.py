"""Tests for the campaign orchestrator: parallel fan-out, persistence, resume."""

import os

import pytest

from repro.campaigns.orchestrator import orchestrate, run_campaign_parallel
from repro.campaigns.pool import RetryPolicy, execute_shard, run_shards
from repro.campaigns.shards import ExperimentShard, make_shards
from repro.campaigns.store import CampaignStore
from repro.exceptions import CampaignError
from repro.experiments.runner import CampaignConfig, run_campaign
from repro.experiments.workload import WorkloadSpec
from repro.platform.builder import heterogeneous_platform


@pytest.fixture(scope="module")
def platform():
    return heterogeneous_platform((10, 14), (3.0, 4.0), name="orch-platform")


@pytest.fixture(scope="module")
def config(platform):
    return CampaignConfig(
        family="random",
        ptg_counts=(2, 3),
        workloads_per_point=2,
        platforms=(platform,),
        strategy_names=("S", "ES"),
        base_seed=17,
        max_tasks=8,
    )


@pytest.fixture(scope="module")
def serial(config):
    return run_campaign(config)


class TestExecuteShard:
    def test_matches_serial_experiment(self, config, serial):
        shard = make_shards(config)[0]
        outcome = execute_shard(shard)
        assert outcome.ok
        assert outcome.result == serial.experiments[0]
        assert outcome.workload is not None

    def test_failure_is_captured_not_raised(self, config, platform):
        shard = ExperimentShard(
            index=0,
            spec=WorkloadSpec("random", n_ptgs=2, seed=1, max_tasks=8),
            platform=platform,
            strategy_names=("no-such-strategy",),
        )
        outcome = execute_shard(shard)
        assert not outcome.ok
        assert outcome.result is None
        assert "no-such-strategy" in outcome.error


class TestRunShards:
    def test_outcomes_arrive_in_shard_order(self, config):
        shards = make_shards(config)
        outcomes = list(run_shards(shards, jobs=2))
        assert [o.index for o in outcomes] == [s.index for s in shards]
        assert [o.key for o in outcomes] == [s.key() for s in shards]

    def test_inline_and_parallel_agree(self, config):
        shards = make_shards(config)
        inline = [o.result for o in run_shards(shards, jobs=1)]
        parallel = [o.result for o in run_shards(shards, jobs=2)]
        assert inline == parallel


class TestParallelMatchesSerial:
    def test_aggregates_are_bit_identical(self, config, serial):
        result = run_campaign_parallel(config, jobs=2)
        assert result.average_unfairness() == serial.average_unfairness()
        assert (
            result.average_relative_makespan() == serial.average_relative_makespan()
        )
        assert (
            result.average_mean_application_makespan()
            == serial.average_mean_application_makespan()
        )

    def test_store_round_trip_is_bit_identical(self, config, serial, tmp_path):
        """Aggregates survive the JSONL round trip exactly."""
        run_campaign_parallel(config, store=str(tmp_path / "s"), jobs=2)
        # a fresh orchestration re-assembles everything from the store
        rebuilt = run_campaign_parallel(config, store=str(tmp_path / "s"), jobs=2)
        assert rebuilt.average_unfairness() == serial.average_unfairness()
        assert (
            rebuilt.average_relative_makespan() == serial.average_relative_makespan()
        )


class TestResume:
    def test_completed_shards_are_skipped(self, config, tmp_path):
        store = CampaignStore(tmp_path / "s")
        first = orchestrate(config, store=store, jobs=1)
        assert first.stats.executed_shards == first.stats.total_shards
        second = orchestrate(config, store=store, jobs=1)
        assert second.stats.executed_shards == 0
        assert second.stats.skipped_shards == second.stats.total_shards
        assert (
            second.result.average_unfairness() == first.result.average_unfairness()
        )

    def test_interrupted_run_completes_without_reexecution(
        self, config, serial, tmp_path
    ):
        """Drop all but one record, resume, and check only the rest re-runs."""
        store = CampaignStore(tmp_path / "s")
        orchestrate(config, store=store, jobs=1)
        with open(store.results_path, "r", encoding="utf-8") as handle:
            first_line = handle.readline()
        with open(store.results_path, "w", encoding="utf-8") as handle:
            handle.write(first_line)
        resumed = orchestrate(config, store=store, jobs=1)
        assert resumed.stats.skipped_shards == 1
        assert resumed.stats.executed_shards == resumed.stats.total_shards - 1
        assert resumed.result.average_unfairness() == serial.average_unfairness()

    def test_progress_reports_resume_and_labels(self, config, tmp_path):
        store = CampaignStore(tmp_path / "s")
        orchestrate(config, store=store, jobs=1)
        messages = []
        orchestrate(config, store=store, jobs=1, progress=messages.append)
        assert any("resuming" in m for m in messages)

    def test_warm_cache_serves_resumed_reference_makespans(self, config, tmp_path):
        store = CampaignStore(tmp_path / "s")
        orchestrate(config, store=store, jobs=1)
        # lose the results but keep the own-makespan cache: every reference
        # makespan of the re-run must come from the cache
        os.remove(store.results_path)
        rerun = orchestrate(config, store=store, jobs=1)
        assert rerun.stats.cache_misses == 0
        assert rerun.stats.cache_hits > 0
        assert rerun.stats.cache_hit_rate == 1.0


class TestStoreGuards:
    def test_mismatched_campaign_is_refused(self, config, platform, tmp_path):
        store = CampaignStore(tmp_path / "s")
        orchestrate(config, store=store, jobs=1)
        other = CampaignConfig(
            family="random", ptg_counts=(2,), workloads_per_point=1,
            platforms=(platform,), strategy_names=("S",), base_seed=99, max_tasks=8,
        )
        with pytest.raises(CampaignError):
            orchestrate(other, store=store, jobs=1)

    def test_populated_store_requires_resume(self, config, tmp_path):
        store = CampaignStore(tmp_path / "s")
        orchestrate(config, store=store, jobs=1)
        with pytest.raises(CampaignError):
            orchestrate(config, store=store, jobs=1, resume=False)


class TestRetryPolicy:
    def test_delay_is_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy()
        assert policy.delay("k", 1) == policy.delay("k", 1)
        assert policy.delay("k", 1) != policy.delay("other", 1)
        assert policy.delay("k", 1) != policy.delay("k", 2)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(attempts=8, base_delay=0.5, max_delay=8.0)
        caps = [min(8.0, 0.5 * 2 ** (attempt - 1)) for attempt in range(1, 8)]
        for attempt, cap in enumerate(caps, start=1):
            delay = policy.delay("k", attempt)
            # jitter keeps every delay within [cap/2, cap]
            assert 0.5 * cap <= delay <= cap
        assert policy.delay("k", 7) <= 8.0

    def test_invalid_policies_raise(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_delay=0.1, base_delay=0.5)

    def test_transient_failure_heals_within_the_attempt_budget(
        self, config, serial, monkeypatch
    ):
        """Fails twice, succeeds on the third try: outcome.ok, 2 backoffs."""
        from repro.campaigns import pool

        original = pool.run_experiment
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise RuntimeError("transient crash")
            return original(*args, **kwargs)

        monkeypatch.setattr(pool, "run_experiment", flaky)
        slept = []
        shard = make_shards(config)[0]
        outcome = execute_shard(
            shard, retry=RetryPolicy(attempts=3), sleep=slept.append
        )
        assert outcome.ok
        assert outcome.attempts == 3
        assert outcome.result == serial.experiments[0]
        assert len(slept) == 2
        assert slept[0] < slept[1]  # exponential backoff (jitter < growth)

    def test_exhausted_attempts_report_the_last_error(self, config, monkeypatch):
        from repro.campaigns import pool

        def broken(*args, **kwargs):
            raise RuntimeError("permanent crash")

        monkeypatch.setattr(pool, "run_experiment", broken)
        slept = []
        shard = make_shards(config)[0]
        outcome = execute_shard(
            shard, retry=RetryPolicy(attempts=2), sleep=slept.append
        )
        assert not outcome.ok
        assert outcome.attempts == 2
        assert "permanent crash" in outcome.error
        assert len(slept) == 1

    def test_no_retry_by_default(self, config, monkeypatch):
        from repro.campaigns import pool

        calls = {"n": 0}

        def broken(*args, **kwargs):
            calls["n"] += 1
            raise RuntimeError("crash")

        monkeypatch.setattr(pool, "run_experiment", broken)
        outcome = execute_shard(make_shards(config)[0])
        assert not outcome.ok
        assert outcome.attempts == 1
        assert calls["n"] == 1


class TestFailureHandling:
    @staticmethod
    def _flaky_config(platform):
        return CampaignConfig(
            family="random", ptg_counts=(2, 3), workloads_per_point=1,
            platforms=(platform,), strategy_names=("S",), base_seed=17, max_tasks=8,
        )

    @staticmethod
    def _break_3ptg_shards(monkeypatch):
        from repro.campaigns import pool

        original = pool.run_experiment

        def flaky(ptgs, *args, **kwargs):
            if len(ptgs) == 3:
                raise RuntimeError("boom on the 3-PTG shard")
            return original(ptgs, *args, **kwargs)

        monkeypatch.setattr(pool, "run_experiment", flaky)

    def test_failed_shard_is_quarantined_not_fatal(
        self, platform, tmp_path, monkeypatch
    ):
        """A persistently failing shard lands in quarantine; the rest complete."""
        config = self._flaky_config(platform)
        shards = make_shards(config)
        self._break_3ptg_shards(monkeypatch)
        store = CampaignStore(tmp_path / "s")
        run = orchestrate(config, store=store, jobs=1)
        assert store.completed_keys() == {shards[0].key()}
        assert run.stats.failed_shards == 1
        assert run.stats.quarantined == [shards[1].label()]
        assert len(run.result.experiments) == 1
        records = store.payloads_by_key("quarantine")
        assert set(records) == {shards[1].key()}
        payload = records[shards[1].key()]
        assert payload["label"] == shards[1].label()
        assert "boom on the 3-PTG shard" in payload["error"]
        assert payload["attempts"] == 1
        # a later resume re-runs the quarantined shard (its result key is
        # still missing) and heals the campaign
        monkeypatch.undo()
        resumed = orchestrate(config, store=store, jobs=1)
        assert resumed.stats.skipped_shards == 1
        assert resumed.stats.executed_shards == 1
        assert resumed.stats.failed_shards == 0

    def test_failures_without_store_still_raise(self, platform, monkeypatch):
        """In-memory runs have nowhere to quarantine: they abort as before."""
        config = self._flaky_config(platform)
        self._break_3ptg_shards(monkeypatch)
        with pytest.raises(CampaignError, match="1 shard"):
            orchestrate(config, store=None, jobs=1)

    def test_all_shards_failing_raises_even_with_store(
        self, platform, tmp_path, monkeypatch
    ):
        """Zero surviving shards leaves nothing to aggregate: abort."""
        config = self._flaky_config(platform)
        from repro.campaigns import pool

        def broken(ptgs, *args, **kwargs):
            raise RuntimeError("everything burns")

        monkeypatch.setattr(pool, "run_experiment", broken)
        with pytest.raises(CampaignError, match="2 shard"):
            orchestrate(config, store=CampaignStore(tmp_path / "s"), jobs=1)
