"""Concurrency determinism of the admission daemon.

The design claim under test: each tenant owns an independent
:class:`StreamSession`, so **any** interleaving of concurrent tenants
produces per-tenant outcomes bit-identical to replaying each tenant's
arrivals through a private session -- and every served schedule is
validator-clean.  A hypothesis property drives randomized interleavings
(run in CI with ``HYPOTHESIS_PROFILE=ci --hypothesis-seed=0``); the
chunked ``feed()`` regression rides along as the engine-level cousin of
the same invariant.
"""

from __future__ import annotations

import asyncio
import random

from hypothesis import given, settings, strategies as st

from repro.service.app import Request, ServiceApp
from repro.streaming.engine import Arrival, StreamSession
from repro.streaming.run import schedule_to_rows

from service_harness import (
    FaultyTransport,
    all_tenant_rows,
    chain_ptg,
    make_arrivals,
    make_service_spec,
    replay_rows,
)


def _interleave(arrivals, order):
    """Reorder *arrivals* by tenant pick sequence, per-tenant order kept."""
    queues = {}
    for item in arrivals:
        queues.setdefault(item[0], []).append(item)
    return [queues[tenant].pop(0) for tenant in order]


def _tenant_pick_order(arrivals):
    """The tenant of each arrival, in submission order (a multiset)."""
    return [tenant for tenant, _, _ in arrivals]


async def _run_interleaved(spec, arrivals, concurrent_clients=True):
    """Submit *arrivals* (already in delivery order) and collect rows."""
    app = ServiceApp(spec)
    transport = FaultyTransport(app)
    if concurrent_clients:
        # one client task per tenant, racing on the shared event loop;
        # per-tenant submission order is preserved, global order is not
        per_tenant = {}
        for item in arrivals:
            per_tenant.setdefault(item[0], []).append(item)

        async def client(items):
            for tenant, at, ptg in items:
                response = await transport.submit(tenant, at, ptg)
                assert response.status == 202, response.body
                await asyncio.sleep(0)

        await asyncio.gather(*(client(items) for items in per_tenant.values()))
    else:
        for tenant, at, ptg in arrivals:
            response = await transport.submit(tenant, at, ptg)
            assert response.status == 202, response.body
    rows = await all_tenant_rows(app)
    await app.stop()
    return rows


def test_concurrent_tenants_match_independent_replays():
    """N tenants racing on one daemon == N private offline sessions."""
    spec = make_service_spec(queue_depth=32)
    arrivals = make_arrivals(12, tenants=("t0", "t1", "t2", "t3"))
    served = asyncio.run(_run_interleaved(spec, arrivals))
    assert served == replay_rows(spec, arrivals)


def test_submission_interleaving_is_irrelevant():
    """Shuffling the global delivery order never changes any tenant."""
    spec = make_service_spec(queue_depth=32)
    arrivals = make_arrivals(10, tenants=("t0", "t1", "t2"))
    oracle = replay_rows(spec, arrivals)
    rng = random.Random(7)
    for _ in range(3):
        order = _tenant_pick_order(arrivals)
        rng.shuffle(order)
        shuffled = _interleave(arrivals, order)
        served = asyncio.run(_run_interleaved(spec, shuffled, concurrent_clients=False))
        assert served == oracle


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_property_interleaving_invariance(data):
    """Property: any tenant interleaving yields the replay outcome."""
    n_tenants = data.draw(st.integers(min_value=1, max_value=3), label="tenants")
    n_arrivals = data.draw(st.integers(min_value=2, max_value=8), label="arrivals")
    tenants = tuple(f"t{i}" for i in range(n_tenants))
    arrivals = make_arrivals(n_arrivals, tenants=tenants)
    order = data.draw(
        st.permutations(_tenant_pick_order(arrivals)), label="interleaving"
    )
    spec = make_service_spec(queue_depth=16)
    shuffled = _interleave(arrivals, order)
    served = asyncio.run(_run_interleaved(spec, shuffled, concurrent_clients=False))
    assert served == replay_rows(spec, arrivals)


def test_out_of_order_submission_is_rejected_not_admitted():
    """Within one tenant the past stays closed: older arrivals get a 409."""
    spec = make_service_spec()

    async def run():
        app = ServiceApp(spec)
        transport = FaultyTransport(app)
        first = await transport.submit("solo", 50.0, chain_ptg("late"))
        assert first.status == 202
        stale = await transport.submit("solo", 10.0, chain_ptg("early"))
        assert stale.status == 409
        assert "past" in stale.body["error"]
        rows = await all_tenant_rows(app)
        await app.stop()
        return rows

    rows = asyncio.run(run())
    # only the accepted application was scheduled
    assert {row[0] for row in rows["solo"]} == {"late"}


# --------------------------------------------------------------------- #
# engine-level regression: chunked feed()
# --------------------------------------------------------------------- #
def _fresh_session(spec):
    return ServiceApp(spec)._new_session()


def test_feed_empty_chunk_then_same_timestamp_chunk():
    """Regression: an empty chunk must not disturb a same-instant successor.

    ``feed([])`` used to be a plausible editing hazard around the
    monotonicity guard: the next chunk starts at exactly the timestamp
    of the last admitted arrival, which the guard must keep accepting
    (ties break by name).  The chunked run must equal the single-batch
    run row for row.
    """
    spec = make_service_spec()
    a = Arrival(chain_ptg("app-a"), 30.0)
    b = Arrival(chain_ptg("app-b"), 30.0)  # same instant, later name
    c = Arrival(chain_ptg("app-c"), 60.0)

    chunked = _fresh_session(spec)
    chunked.feed([a])
    chunked.feed([])  # empty chunk between two same-instant arrivals
    chunked.feed([b])
    chunked.feed([])
    chunked.feed([c])

    batched = _fresh_session(spec)
    batched.feed([a, b, c])

    assert schedule_to_rows(chunked.schedule) == schedule_to_rows(batched.schedule)
    assert chunked.completions == batched.completions
    assert chunked.last_admission == (60.0, "app-c")


def test_feed_chunk_boundary_preserves_name_tiebreak():
    """Same-instant arrivals split across chunks keep the (time, name) order."""
    spec = make_service_spec()
    session = _fresh_session(spec)
    session.feed([Arrival(chain_ptg("m"), 10.0)])
    # equal time, name sorts after 'm': must be accepted
    session.feed([Arrival(chain_ptg("n"), 10.0)])
    assert session.admitted == 2
    assert session.last_admission == (10.0, "n")
