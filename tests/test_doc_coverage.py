"""Docstring coverage of the paper-mechanism and scenario packages.

The dag, allocation, constraints and mapping packages implement the
paper's mechanisms (the PTG model and its array compilation, constrained
allocation, the beta-distribution strategies, translation to concrete
clusters, non-insertion placement, allocation packing); the scenarios
package is the public front door on top of them; the streaming package
is the online workload engine, ``repro.service`` the admission daemon
hosting it, ``repro.faults`` the fault-injection and repair layer
perturbing it, and ``repro.validate`` the invariant checker guarding
every schedule.  Every public class, function, method
and property there must carry a docstring explaining what it
implements.  This test enforces it so the documentation audit cannot
rot.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro.allocation
import repro.constraints
import repro.dag
import repro.faults
import repro.mapping
import repro.obs
import repro.scenarios
import repro.exec
import repro.service
import repro.streaming
import repro.validate

AUDITED_PACKAGES = (
    repro.dag,
    repro.allocation,
    repro.constraints,
    repro.exec,
    repro.faults,
    repro.mapping,
    repro.obs,
    repro.scenarios,
    repro.service,
    repro.streaming,
    repro.validate,
)


def audited_modules():
    """All modules of the audited packages (private helpers included).

    Plain audited modules (no ``__path__``, e.g. ``repro.validate``)
    contribute just themselves.
    """
    modules = []
    for package in AUDITED_PACKAGES:
        modules.append(package)
        for info in pkgutil.iter_modules(getattr(package, "__path__", [])):
            modules.append(importlib.import_module(f"{package.__name__}.{info.name}"))
    return modules


def public_members(module):
    """(qualified name, object) pairs that must have docstrings."""
    members = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exported from elsewhere; audited at its home
        members.append((f"{module.__name__}.{name}", obj))
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                target = None
                if inspect.isfunction(attr):
                    target = attr
                elif isinstance(attr, property):
                    target = attr.fget
                elif isinstance(attr, (staticmethod, classmethod)):
                    target = attr.__func__
                if target is not None:
                    members.append((f"{module.__name__}.{name}.{attr_name}", target))
    return members


@pytest.mark.parametrize("module", audited_modules(), ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module.__name__} has no docstring"
    )


@pytest.mark.parametrize("module", audited_modules(), ids=lambda m: m.__name__)
def test_public_members_have_docstrings(module):
    missing = [
        qualified
        for qualified, obj in public_members(module)
        if not (obj.__doc__ and obj.__doc__.strip())
    ]
    assert not missing, f"missing docstrings: {missing}"
