"""Backpressure, SLO accounting and reporting of the admission daemon.

Covers the 429/Retry-After contract of full per-tenant queues, the
``service.slo_violations`` counter against an injected clock, the
synchronous client's retry loop over a real socket, and ``repro-ptg
metrics`` reporting the daemon's p50/p99 admission latency from a
stored checkpoint summary.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.campaigns.store import CampaignStore
from repro.cli import main
from repro.exceptions import ServiceError
from repro.service.app import Request, ServiceApp
from repro.service.client import ServiceClient
from repro.service.http import run_daemon

from service_harness import (
    ManualClock,
    chain_ptg,
    make_service_spec,
    submit_request,
)


def test_full_queue_answers_429_with_retry_after():
    spec = make_service_spec(queue_depth=2, retry_after=0.25)

    async def run():
        app = ServiceApp(spec)
        # submit without yielding: the worker never runs, the queue fills
        answers = [
            await app.handle(submit_request("solo", float(i * 10), chain_ptg(f"a{i}")))
            for i in range(4)
        ]
        rejected = [a for a in answers if a.status == 429]
        accepted = [a for a in answers if a.status == 202]
        assert len(accepted) == 2 and len(rejected) == 2
        for answer in rejected:
            assert answer.headers["Retry-After"] == "0.25"
            assert answer.body["retry_after"] == 0.25
            assert "full" in answer.body["error"]
        assert app.registry.counter("service.rejections").value == 2
        # names rejected by backpressure were NOT consumed: draining the
        # queue makes room and the same submission succeeds
        await app.quiesce()
        retry = await app.handle(submit_request("solo", 20.0, chain_ptg("a2")))
        assert retry.status == 202, retry.body
        await app.quiesce()
        assert app.tenants["solo"].session.admitted == 3
        await app.stop()

    asyncio.run(run())


def test_backpressure_is_per_tenant():
    """One tenant at its depth limit never blocks another tenant."""
    spec = make_service_spec(queue_depth=1)

    async def run():
        app = ServiceApp(spec)
        first = await app.handle(submit_request("greedy", 0.0, chain_ptg("g0")))
        second = await app.handle(submit_request("greedy", 10.0, chain_ptg("g1")))
        other = await app.handle(submit_request("quiet", 0.0, chain_ptg("q0")))
        assert first.status == 202
        assert second.status == 429
        assert other.status == 202, other.body
        await app.stop()

    asyncio.run(run())


def test_slo_violations_counted_with_manual_clock():
    clock = ManualClock()
    spec = make_service_spec(slo=0.5)

    async def run():
        app = ServiceApp(spec, clock=clock)
        for i in range(3):
            await app.handle(submit_request("solo", float(i * 10), chain_ptg(f"s{i}")))
        clock.advance(0.8)  # everything queued is now 0.8s old: SLO breach
        await app.quiesce()
        for i in range(3, 5):
            await app.handle(submit_request("solo", float(i * 10), chain_ptg(f"s{i}")))
        await app.quiesce()  # admitted immediately: no breach
        assert app.registry.counter("service.slo_violations").value == 3
        assert app.tenants["solo"].slo_violations == 3
        status = await app.handle(Request("GET", "/status", query={"tenant": "solo"}))
        assert status.body["slo_violations"] == 3
        metrics = await app.handle(Request("GET", "/metrics"))
        assert metrics.body["metrics"]["counters"]["service.slo_violations"] == 3
        await app.stop()

    asyncio.run(run())


def test_metrics_cli_reports_service_quantiles(tmp_path, capsys):
    """``repro-ptg metrics <store>`` folds in the daemon's summaries."""
    clock = ManualClock()
    spec = make_service_spec(slo=0.5)
    store = CampaignStore(tmp_path / "store")

    async def run():
        app = ServiceApp(spec, store=store, clock=clock)
        for i in range(4):
            await app.handle(submit_request("solo", float(i * 10), chain_ptg(f"m{i}")))
            clock.advance(0.01)
            await app.quiesce()
        checkpoint = await app.handle(Request("POST", "/checkpoint"))
        assert checkpoint.status == 200, checkpoint.body
        await app.stop()

    asyncio.run(run())

    assert main(["metrics", str(tmp_path / "store"), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    histogram = payload["histograms"]["service.admission_latency"]
    assert histogram["count"] == 4
    assert payload["counters"]["service.admissions"] == 4

    capsys.readouterr()
    assert main(["metrics", str(tmp_path / "store")]) == 0
    text = capsys.readouterr().out
    assert "service.admission_latency" in text
    assert "p50" in text and "p99" in text


def test_client_submit_retries_through_backpressure():
    """The sync client's retry loop waits out a 429 and lands the submit."""
    spec = make_service_spec(queue_depth=1, retry_after=0.05)
    ready = threading.Event()
    box = {}

    def on_ready(port):
        box["port"] = port
        ready.set()

    server = threading.Thread(
        target=run_daemon, args=(spec,), kwargs={"ready": on_ready}, daemon=True
    )
    server.start()
    assert ready.wait(10)
    client = ServiceClient("127.0.0.1", box["port"])
    client.wait_ready()
    try:
        for i in range(5):
            answer = client.submit("solo", float(i * 10), chain_ptg(f"c{i}"))
            assert answer["tenant"] == "solo"
        status = client.status("solo")
        assert status["admitted"] + status["pending"] == 5
        schedule = client.schedule("solo")
        assert schedule["valid"] is True
        with pytest.raises(ServiceError, match="unknown tenant"):
            client.schedule("nobody")
    finally:
        client.shutdown()
        server.join(10)
    assert not server.is_alive()


class _BackpressuredClient(ServiceClient):
    """A client whose daemon always answers 429 (no socket involved)."""

    def __init__(self):
        super().__init__("127.0.0.1", 1)
        self.requests = 0

    def request(self, method, path, body=None):
        self.requests += 1
        return {"status": 429, "retry_after": 0.05}


def test_client_submit_no_wait_raises_on_429():
    client = _BackpressuredClient()
    with pytest.raises(ServiceError) as err:
        client.submit("solo", 0.0, chain_ptg("n0"), wait=False)
    assert err.value.status == 429
    assert client.requests == 1


def test_client_submit_retry_budget_is_bounded():
    """A daemon that never makes room exhausts the retry budget cleanly."""
    client = _BackpressuredClient()
    naps = []
    with pytest.raises(ServiceError, match="still backpressured"):
        client.submit("solo", 0.0, chain_ptg("n0"), max_retries=3, sleep=naps.append)
    assert naps == [0.05, 0.05, 0.05, 0.05]  # paced by the Retry-After hint
    assert client.requests == 4
