"""Tests for the Strassen PTG generator."""

import pytest

from repro.dag.strassen import (
    STRASSEN_TASK_COUNT,
    generate_strassen_ptg,
    paper_strassen_workload,
)
from repro.exceptions import ConfigurationError


class TestStructure:
    def test_twenty_five_tasks(self):
        g = generate_strassen_ptg(rng=0)
        assert g.n_tasks == STRASSEN_TASK_COUNT == 25

    def test_valid_single_entry_exit(self):
        g = generate_strassen_ptg(rng=0)
        g.validate()
        assert g.entry_task.name == "split"
        assert g.exit_task.name == "merge"

    def test_seven_products_present(self):
        g = generate_strassen_ptg(rng=0)
        products = [t for t in g.tasks() if t.name.startswith("P")]
        assert len(products) == 7

    def test_products_dominate_cost(self):
        g = generate_strassen_ptg(rng=0)
        products = [t for t in g.tasks() if t.name.startswith("P")]
        additions = [t for t in g.tasks() if t.name.startswith("S")]
        assert min(p.flops for p in products) > max(a.flops for a in additions)

    def test_fixed_shape_across_instances(self):
        a = generate_strassen_ptg(rng=1)
        b = generate_strassen_ptg(rng=2)
        assert a.n_tasks == b.n_tasks
        assert sorted((s, d) for s, d, _ in a.edges()) == sorted(
            (s, d) for s, d, _ in b.edges()
        )
        assert a.max_width() == b.max_width()

    def test_costs_differ_across_instances(self):
        a = generate_strassen_ptg(rng=1)
        b = generate_strassen_ptg(rng=2)
        assert [t.flops for t in a.tasks()] != [t.flops for t in b.tasks()]

    def test_explicit_parameters(self):
        g = generate_strassen_ptg(data_elements=16e6, alpha=0.2, name="str")
        assert g.name == "str"
        assert all(t.alpha == 0.2 for t in g.tasks())

    @pytest.mark.parametrize("kwargs", [dict(data_elements=-1), dict(alpha=1.5)])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            generate_strassen_ptg(rng=0, **kwargs)


class TestWorkload:
    def test_workload_same_shape_same_width(self):
        workload = paper_strassen_workload(0, n_ptgs=4)
        widths = {p.max_width() for p in workload}
        assert len(widths) == 1  # the reason width-based strategies degenerate to ES

    def test_unique_names(self):
        workload = paper_strassen_workload(0, n_ptgs=6)
        assert len({p.name for p in workload}) == 6

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            paper_strassen_workload(0, n_ptgs=0)
