"""Tests for the Table 1 harness."""

from repro.experiments.tables import site_summary_rows, table1_rows, table1_text


class TestTable1:
    def test_eleven_clusters(self):
        rows = table1_rows()
        assert len(rows) == 11

    def test_rows_match_paper(self):
        rows = {cluster: (procs, speed) for _, cluster, procs, speed in table1_rows()}
        assert rows["chuque"] == (53, 3.647)
        assert rows["grelon"] == (120, 3.185)
        assert rows["paraquad"] == (66, 4.603)
        assert rows["sol"] == (50, 4.389)

    def test_site_summaries(self):
        summary = {site: (procs, round(het, 1)) for site, procs, _, het in site_summary_rows()}
        assert summary["lille"][0] == 99
        assert summary["nancy"][0] == 167
        assert summary["rennes"][0] == 229
        assert summary["sophia"][0] == 180
        assert summary["lille"][1] == 20.2
        assert summary["nancy"][1] == 6.1

    def test_text_rendering(self):
        text = table1_text()
        assert "Table 1" in text
        assert "grelon" in text
        assert "heterogeneity" in text
