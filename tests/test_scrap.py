"""Tests for the SCRAP and SCRAP-MAX constrained allocation procedures."""

import pytest

from repro.allocation.scrap import ScrapAllocator, ScrapMaxAllocator
from repro.dag.generator import RandomPTGConfig, generate_random_ptg

from tests.conftest import make_chain_ptg, make_fork_join_ptg


class TestScrap:
    def test_respects_area_constraint(self, small_platform, rng):
        allocator = ScrapAllocator()
        for beta in (0.1, 0.3, 1.0):
            ptg = generate_random_ptg(rng, RandomPTGConfig(n_tasks=12))
            alloc = allocator.allocate(ptg, small_platform, beta=beta)
            assert ScrapAllocator.respects_constraint(alloc, small_platform)

    def test_stats_available(self, small_platform, chain_ptg):
        allocator = ScrapAllocator()
        allocator.allocate(chain_ptg, small_platform, beta=0.5)
        assert allocator.last_stats is not None
        assert allocator.last_stats.iterations > 0

    def test_smaller_beta_smaller_allocation(self, small_platform):
        ptg = make_chain_ptg(n=3, flops=200e9, alpha=0.05)
        allocator = ScrapAllocator()
        loose = allocator.allocate(ptg, small_platform, beta=1.0)
        tight = allocator.allocate(ptg, small_platform, beta=0.1)
        assert sum(tight.as_dict().values()) <= sum(loose.as_dict().values())


class TestScrapMax:
    def test_respects_level_constraint(self, medium_platform, rng):
        allocator = ScrapMaxAllocator()
        for beta in (0.2, 0.5, 1.0):
            ptg = generate_random_ptg(rng, RandomPTGConfig(n_tasks=15))
            alloc = allocator.allocate(ptg, medium_platform, beta=beta)
            assert ScrapMaxAllocator.respects_constraint(alloc, medium_platform)

    def test_per_level_power_bounded(self, medium_platform):
        ptg = make_fork_join_ptg(width=6, flops=100e9, alpha=0.05)
        beta = 0.3
        alloc = ScrapMaxAllocator().allocate(ptg, medium_platform, beta=beta)
        limit = beta * medium_platform.total_power_gflops + 1e-9
        for level, power in alloc.level_powers().items():
            assert power <= limit, f"level {level} exceeds the constraint"

    def test_constraint_respected_on_random_graphs(self, lille, rng):
        """Paper Section 4: the constraint was respected in 99% of scenarios.

        With our per-level freezing rule the final allocation always
        respects the constraint whenever the initial one-processor-per-task
        allocation does.
        """
        allocator = ScrapMaxAllocator()
        betas = (0.125, 0.25, 0.5)
        for i, beta in enumerate(betas):
            ptg = generate_random_ptg(rng, RandomPTGConfig(n_tasks=20), name=f"p{i}")
            alloc = allocator.allocate(ptg, lille, beta=beta)
            initial_ok = all(
                len(tids) * alloc.reference.speed_gflops
                <= beta * lille.total_power_gflops + 1e-9
                for tids in ptg.tasks_by_level().values()
            )
            if initial_ok:
                assert ScrapMaxAllocator.respects_constraint(alloc, lille)

    def test_scrap_and_scrap_max_each_respect_their_constraint(self, medium_platform):
        """Both procedures enforce their own notion of the beta constraint."""
        ptg = make_fork_join_ptg(width=5, flops=150e9, alpha=0.05)
        scrap = ScrapAllocator().allocate(ptg, medium_platform, beta=0.9)
        scrap_max = ScrapMaxAllocator().allocate(ptg, medium_platform, beta=0.9)
        assert ScrapAllocator.respects_constraint(scrap, medium_platform)
        assert ScrapMaxAllocator.respects_constraint(scrap_max, medium_platform)
        # SCRAP applies a single global check, so it may concentrate more
        # power in the widest level than SCRAP-MAX allows there.
        limit = 0.9 * medium_platform.total_power_gflops + 1e-9
        assert max(scrap_max.level_powers().values()) <= limit

    def test_beta_one_equivalent_platform_share(self, medium_platform, rng):
        ptg = generate_random_ptg(rng, RandomPTGConfig(n_tasks=10))
        alloc = ScrapMaxAllocator().allocate(ptg, medium_platform, beta=1.0)
        # with beta = 1 the constraint is the whole platform: always respected
        assert ScrapMaxAllocator.respects_constraint(alloc, medium_platform)

    def test_stats_reports_frozen_tasks_with_tight_beta(self, medium_platform):
        ptg = make_fork_join_ptg(width=8, flops=300e9, alpha=0.02)
        allocator = ScrapMaxAllocator()
        allocator.allocate(ptg, medium_platform, beta=0.15)
        stats = allocator.last_stats
        assert stats is not None
        assert stats.iterations >= stats.increments
