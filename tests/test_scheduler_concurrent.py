"""Tests for the concurrent multi-application scheduler."""

import pytest

from repro.constraints.registry import STRATEGY_NAMES, strategy
from repro.constraints.strategies import EqualShareStrategy, SelfishStrategy
from repro.exceptions import ConfigurationError
from repro.mapping.global_order import GlobalOrderMapper
from repro.scheduler.concurrent import ConcurrentScheduler

from tests.conftest import make_chain_ptg


class TestConcurrentScheduler:
    def test_default_components(self, medium_platform, random_workload):
        result = ConcurrentScheduler().schedule(random_workload, medium_platform)
        assert result.strategy_name == "ES"
        assert set(result.betas) == {p.name for p in random_workload}
        assert len(result.schedule) == sum(p.n_tasks for p in random_workload)

    def test_schedule_consistency(self, medium_platform, random_workload):
        result = ConcurrentScheduler(SelfishStrategy()).schedule(
            random_workload, medium_platform
        )
        result.schedule.validate_no_overlap()
        result.schedule.validate_precedences(random_workload)

    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_every_strategy_produces_complete_schedule(
        self, name, medium_platform, random_workload
    ):
        result = ConcurrentScheduler(strategy(name)).schedule(
            random_workload, medium_platform
        )
        for ptg in random_workload:
            assert result.makespan(ptg.name) > 0

    def test_betas_recorded_per_application(self, medium_platform, random_workload):
        result = ConcurrentScheduler(EqualShareStrategy()).schedule(
            random_workload, medium_platform
        )
        for ptg in random_workload:
            assert result.beta(ptg.name) == pytest.approx(1 / len(random_workload))
        assert result.allocations[random_workload[0].name].beta == pytest.approx(1 / 3)

    def test_makespans_and_global_makespan(self, medium_platform, random_workload):
        result = ConcurrentScheduler().schedule(random_workload, medium_platform)
        assert result.global_makespan == pytest.approx(max(result.makespans.values()))

    def test_unknown_application_queries(self, medium_platform, random_workload):
        result = ConcurrentScheduler().schedule(random_workload, medium_platform)
        with pytest.raises(Exception):
            result.makespan("unknown")
        with pytest.raises(Exception):
            result.beta("unknown")

    def test_empty_workload_rejected(self, medium_platform):
        with pytest.raises(ConfigurationError):
            ConcurrentScheduler().schedule([], medium_platform)

    def test_duplicate_names_rejected(self, medium_platform):
        ptgs = [make_chain_ptg("same"), make_chain_ptg("same")]
        with pytest.raises(ConfigurationError):
            ConcurrentScheduler().schedule(ptgs, medium_platform)

    def test_custom_mapper(self, medium_platform, random_workload):
        result = ConcurrentScheduler(mapper=GlobalOrderMapper()).schedule(
            random_workload, medium_platform
        )
        result.schedule.validate_no_overlap()

    def test_single_application_equivalent_to_selfish(self, medium_platform, chain_ptg):
        es = ConcurrentScheduler(EqualShareStrategy()).schedule([chain_ptg], medium_platform)
        s = ConcurrentScheduler(SelfishStrategy()).schedule([chain_ptg], medium_platform)
        # with one application every strategy assigns beta = 1
        assert es.beta(chain_ptg.name) == s.beta(chain_ptg.name) == 1.0
        assert es.makespan(chain_ptg.name) == pytest.approx(s.makespan(chain_ptg.name))
