"""Tests for the HEFT baseline scheduler."""

import pytest

from repro.baselines.heft import HEFTScheduler
from repro.exceptions import MappingError

from tests.conftest import make_chain_ptg, make_fork_join_ptg


class TestHEFT:
    def test_every_task_on_one_processor(self, medium_platform, small_random_ptg):
        schedule = HEFTScheduler().schedule(small_random_ptg, medium_platform)
        assert len(schedule) == small_random_ptg.n_tasks
        assert all(entry.num_processors == 1 for entry in schedule)

    def test_schedule_consistency(self, medium_platform, small_random_ptg):
        schedule = HEFTScheduler().schedule(small_random_ptg, medium_platform)
        schedule.validate_no_overlap()
        schedule.validate_precedences([small_random_ptg])

    def test_upward_ranks_decrease_along_paths(self, medium_platform, chain_ptg):
        ranks = HEFTScheduler().upward_ranks(chain_ptg, medium_platform)
        assert ranks[0] > ranks[1] > ranks[2] > ranks[3]

    def test_fork_join_uses_several_processors(self, medium_platform):
        ptg = make_fork_join_ptg(width=6, flops=40e9)
        schedule = HEFTScheduler().schedule(ptg, medium_platform)
        used = {(e.cluster_name, e.processors[0]) for e in schedule}
        assert len(used) > 1

    def test_multiple_applications(self, medium_platform, random_workload):
        schedule = HEFTScheduler().schedule(random_workload, medium_platform)
        schedule.validate_no_overlap()
        for ptg in random_workload:
            assert len(schedule.entries_of(ptg.name)) == ptg.n_tasks

    def test_empty_input_rejected(self, medium_platform):
        with pytest.raises(MappingError):
            HEFTScheduler().schedule([], medium_platform)

    def test_single_cluster_platform(self, single_cluster, chain_ptg):
        schedule = HEFTScheduler().schedule(chain_ptg, single_cluster)
        schedule.validate_precedences([chain_ptg])

    def test_ignores_data_parallelism(self, medium_platform):
        """HEFT cannot beat the sequential critical path of a chain."""
        ptg = make_chain_ptg(n=3, flops=50e9, alpha=0.0)
        schedule = HEFTScheduler().schedule(ptg, medium_platform)
        fastest_speed = max(c.speed_flops for c in medium_platform)
        sequential_cp = sum(t.flops for t in ptg.tasks()) / fastest_speed
        assert schedule.makespan(ptg.name) >= sequential_cp - 1e-9
