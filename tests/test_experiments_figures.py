"""Tests for the figure harnesses (Figures 2-5) at a reduced scale."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.figures import FIGURE_FAMILIES, run_figure
from repro.experiments.mu_sweep import run_mu_sweep
from repro.experiments.reporting import (
    render_campaign_summary,
    render_figure,
    render_mu_sweep,
)
from repro.platform.builder import heterogeneous_platform


@pytest.fixture(scope="module")
def tiny_platform():
    return heterogeneous_platform((10, 14), (3.0, 4.0), name="fig-platform")


class TestRunFigure:
    def test_unknown_figure(self):
        with pytest.raises(ConfigurationError):
            run_figure(7)

    def test_figure_families(self):
        assert FIGURE_FAMILIES == {3: "random", 4: "fft", 5: "strassen"}

    @pytest.mark.parametrize("figure", [3, 5])
    def test_reduced_figure_runs(self, figure, tiny_platform):
        result = run_figure(
            figure,
            ptg_counts=(2,),
            workloads_per_point=1,
            platforms=[tiny_platform],
            base_seed=3,
            max_tasks=8,
        )
        assert result.ptg_counts == [2]
        strategies = result.strategies()
        assert "S" in strategies and "ES" in strategies
        if figure == 5:
            assert "WPS-width" not in strategies
        for name in strategies:
            assert result.unfairness_at(name, 2) >= 0
            assert result.relative_makespan_at(name, 2) >= 1.0
        # rendering works
        text = render_figure(result)
        assert f"Figure {figure}" in text
        summary = render_campaign_summary(result.campaign)
        assert "strategy" in summary

    def test_mean_helpers(self, tiny_platform):
        result = run_figure(
            3, ptg_counts=(2,), workloads_per_point=1,
            platforms=[tiny_platform], base_seed=1, max_tasks=8,
        )
        for name in result.strategies():
            assert result.mean_unfairness(name) == pytest.approx(
                result.unfairness_at(name, 2)
            )
            assert result.mean_relative_makespan(name) >= 1.0


class TestMuSweep:
    def test_reduced_sweep(self, tiny_platform):
        result = run_mu_sweep(
            characteristic="work",
            family="random",
            mu_values=(0.0, 1.0),
            ptg_counts=(2,),
            workloads_per_point=1,
            platforms=[tiny_platform],
            base_seed=2,
            max_tasks=8,
        )
        assert result.mu_values == [0.0, 1.0]
        assert result.ptg_counts == [2]
        assert len(result.unfairness[2]) == 2
        assert len(result.average_makespan[2]) == 2
        assert 0.0 <= result.recommended_mu() <= 1.0
        text = render_mu_sweep(result)
        assert "Figure 2" in text

    def test_invalid_arguments(self, tiny_platform):
        with pytest.raises(ConfigurationError):
            run_mu_sweep(mu_values=(), platforms=[tiny_platform])
        with pytest.raises(ConfigurationError):
            run_mu_sweep(workloads_per_point=0, platforms=[tiny_platform])


class TestFigureParallelPath:
    def test_resume_without_store_is_refused(self):
        with pytest.raises(ConfigurationError, match="store"):
            run_figure(3, ptg_counts=(2,), workloads_per_point=1, resume=True)
