"""Tests for the cluster processor timelines."""

import pytest

from repro.exceptions import MappingError
from repro.mapping.timeline import ClusterTimeline, PlatformTimeline
from repro.platform.cluster import Cluster


@pytest.fixture
def timeline():
    return ClusterTimeline(Cluster("c", 4, 2.0))


class TestClusterTimeline:
    def test_initially_all_free(self, timeline):
        assert timeline.earliest_start(4, 0.0) == 0.0
        assert list(timeline.free_times()) == [0.0] * 4

    def test_reserve_advances_free_times(self, timeline):
        procs, start, finish = timeline.reserve(2, 0.0, 5.0)
        assert start == 0.0 and finish == 5.0
        assert sorted(procs) == [0, 1]
        assert timeline.earliest_start(4, 0.0) == 5.0  # needs all four
        assert timeline.earliest_start(2, 0.0) == 0.0  # two still free

    def test_ready_time_respected(self, timeline):
        _, start, _ = timeline.reserve(1, 3.0, 1.0)
        assert start == 3.0

    def test_earliest_start_kth_smallest(self, timeline):
        timeline.reserve(1, 0.0, 10.0)
        timeline.reserve(1, 0.0, 2.0)
        # free times are now [10, 2, 0, 0]
        assert timeline.earliest_start(2, 0.0) == 0.0
        assert timeline.earliest_start(3, 0.0) == 2.0
        assert timeline.earliest_start(4, 0.0) == 10.0

    def test_selects_earliest_free_processors(self, timeline):
        timeline.reserve(2, 0.0, 8.0)      # procs 0,1 busy until 8
        procs, start, finish = timeline.reserve(2, 0.0, 1.0)
        assert sorted(procs) == [2, 3]
        assert start == 0.0

    def test_too_many_processors(self, timeline):
        with pytest.raises(MappingError):
            timeline.earliest_start(5, 0.0)
        with pytest.raises(MappingError):
            timeline.reserve(0, 0.0, 1.0)

    def test_negative_arguments(self, timeline):
        with pytest.raises(MappingError):
            timeline.earliest_start(1, -1.0)
        with pytest.raises(MappingError):
            timeline.reserve(1, 0.0, -2.0)

    def test_utilisation(self, timeline):
        timeline.reserve(2, 0.0, 5.0)
        assert timeline.utilisation(10.0) == pytest.approx(2 * 5.0 / (10.0 * 4))
        assert timeline.utilisation(0.0) == 0.0


class TestEarliestStartKth:
    def test_kth_smallest_semantics(self):
        t = ClusterTimeline(Cluster("c", 3, 1.0))
        t.reserve(1, 0.0, 4.0)
        t.reserve(1, 0.0, 2.0)
        # free times now [4, 2, 0]
        assert t.earliest_start(1, 0.0) == 0.0
        assert t.earliest_start(2, 0.0) == 2.0
        assert t.earliest_start(3, 0.0) == 4.0


class TestPlatformTimeline:
    def test_one_timeline_per_cluster(self, small_platform):
        pt = PlatformTimeline(small_platform)
        assert len(pt.timelines()) == len(small_platform)
        for cluster in small_platform:
            assert pt.timeline(cluster.name).num_processors == cluster.num_processors

    def test_unknown_cluster(self, small_platform):
        pt = PlatformTimeline(small_platform)
        with pytest.raises(MappingError):
            pt.timeline("nope")

    def test_reset(self, small_platform):
        pt = PlatformTimeline(small_platform)
        name = small_platform.cluster_names()[0]
        pt.timeline(name).reserve(1, 0.0, 10.0)
        pt.reset()
        assert pt.timeline(name).earliest_start(1, 0.0) == 0.0


class TestTimelineEdgeCases:
    """Boundary behaviour of the incremental sorted-free-time timeline."""

    def test_reserve_exactly_num_processors(self, timeline):
        procs, start, finish = timeline.reserve(4, 0.0, 3.0)
        assert sorted(procs) == [0, 1, 2, 3]
        assert (start, finish) == (0.0, 3.0)
        # the whole cluster frees up at once
        assert timeline.earliest_start(1, 0.0) == 3.0
        assert timeline.earliest_start(4, 0.0) == 3.0
        # a second full-cluster reservation queues behind the first
        procs, start, finish = timeline.reserve(4, 0.0, 2.0)
        assert sorted(procs) == [0, 1, 2, 3]
        assert (start, finish) == (3.0, 5.0)

    def test_repeated_full_cluster_reservations(self, timeline):
        for round_ in range(5):
            _, start, finish = timeline.reserve(4, 0.0, 1.0)
            assert start == float(round_)
            assert finish == float(round_ + 1)

    def test_sorted_view_matches_free_times(self, timeline):
        import numpy as np

        timeline.reserve(2, 0.0, 7.0)
        timeline.reserve(1, 1.0, 2.5)
        timeline.reserve(3, 0.0, 4.0)
        assert np.array_equal(
            timeline.kth_free_times(), np.sort(timeline.free_times())
        )

    def test_kth_free_times_view_not_mutated_by_reserve(self, timeline):
        # reserve() replaces the sorted array instead of mutating it, so a
        # view handed out before the reservation keeps its values -- the
        # EFT engine relies on this while sweeping packing candidates
        view = timeline.kth_free_times()
        timeline.reserve(1, 0.0, 9.0)
        assert list(view) == [0.0] * 4
        assert list(timeline.kth_free_times()) == [0.0, 0.0, 0.0, 9.0]

    def test_earliest_start_error_paths(self, timeline):
        with pytest.raises(MappingError, match="cannot reserve 0 processors"):
            timeline.earliest_start(0, 0.0)
        with pytest.raises(MappingError, match="cannot reserve 5 processors"):
            timeline.earliest_start(5, 0.0)
        with pytest.raises(MappingError, match="ready_time must be non-negative"):
            timeline.earliest_start(1, -0.5)

    def test_select_processors_error_paths(self, timeline):
        with pytest.raises(MappingError, match="cannot reserve 0 processors"):
            timeline.select_processors(0)
        with pytest.raises(MappingError, match="cannot reserve 5 processors"):
            timeline.select_processors(5)

    def test_select_processors_tie_break_by_index(self, timeline):
        # processors 1 and 3 free at 2.0, processors 0 and 2 free at 5.0
        timeline._free_at[:] = [5.0, 2.0, 5.0, 2.0]
        timeline._sorted_free = timeline._free_at.copy()
        timeline._sorted_free.sort()
        assert timeline.select_processors(1) == [1]
        assert timeline.select_processors(2) == [1, 3]
        assert timeline.select_processors(3) == [1, 3, 0]
        assert timeline.select_processors(4) == [1, 3, 0, 2]

    def test_matches_reference_timeline_on_random_traffic(self):
        import numpy as np

        from repro.mapping._reference import ReferenceClusterTimeline

        rng = np.random.default_rng(11)
        fast = ClusterTimeline(Cluster("c", 16, 2.0))
        slow = ReferenceClusterTimeline(Cluster("c", 16, 2.0))
        for _ in range(200):
            procs = int(rng.integers(1, 17))
            ready = float(rng.uniform(0.0, 50.0))
            duration = float(rng.uniform(0.0, 10.0))
            assert fast.earliest_start(procs, ready) == slow.earliest_start(procs, ready)
            assert fast.select_processors(procs) == slow.select_processors(procs)
            assert fast.reserve(procs, ready, duration) == slow.reserve(
                procs, ready, duration
            )
        assert np.array_equal(fast.free_times(), slow.free_times())
