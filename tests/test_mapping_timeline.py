"""Tests for the cluster processor timelines."""

import pytest

from repro.exceptions import MappingError
from repro.mapping.timeline import ClusterTimeline, PlatformTimeline
from repro.platform.cluster import Cluster


@pytest.fixture
def timeline():
    return ClusterTimeline(Cluster("c", 4, 2.0))


class TestClusterTimeline:
    def test_initially_all_free(self, timeline):
        assert timeline.earliest_start(4, 0.0) == 0.0
        assert list(timeline.free_times()) == [0.0] * 4

    def test_reserve_advances_free_times(self, timeline):
        procs, start, finish = timeline.reserve(2, 0.0, 5.0)
        assert start == 0.0 and finish == 5.0
        assert sorted(procs) == [0, 1]
        assert timeline.earliest_start(4, 0.0) == 5.0  # needs all four
        assert timeline.earliest_start(2, 0.0) == 0.0  # two still free

    def test_ready_time_respected(self, timeline):
        _, start, _ = timeline.reserve(1, 3.0, 1.0)
        assert start == 3.0

    def test_earliest_start_kth_smallest(self, timeline):
        timeline.reserve(1, 0.0, 10.0)
        timeline.reserve(1, 0.0, 2.0)
        # free times are now [10, 2, 0, 0]
        assert timeline.earliest_start(2, 0.0) == 0.0
        assert timeline.earliest_start(3, 0.0) == 2.0
        assert timeline.earliest_start(4, 0.0) == 10.0

    def test_selects_earliest_free_processors(self, timeline):
        timeline.reserve(2, 0.0, 8.0)      # procs 0,1 busy until 8
        procs, start, finish = timeline.reserve(2, 0.0, 1.0)
        assert sorted(procs) == [2, 3]
        assert start == 0.0

    def test_too_many_processors(self, timeline):
        with pytest.raises(MappingError):
            timeline.earliest_start(5, 0.0)
        with pytest.raises(MappingError):
            timeline.reserve(0, 0.0, 1.0)

    def test_negative_arguments(self, timeline):
        with pytest.raises(MappingError):
            timeline.earliest_start(1, -1.0)
        with pytest.raises(MappingError):
            timeline.reserve(1, 0.0, -2.0)

    def test_utilisation(self, timeline):
        timeline.reserve(2, 0.0, 5.0)
        assert timeline.utilisation(10.0) == pytest.approx(2 * 5.0 / (10.0 * 4))
        assert timeline.utilisation(0.0) == 0.0


class TestEarliestStartKth:
    def test_kth_smallest_semantics(self):
        t = ClusterTimeline(Cluster("c", 3, 1.0))
        t.reserve(1, 0.0, 4.0)
        t.reserve(1, 0.0, 2.0)
        # free times now [4, 2, 0]
        assert t.earliest_start(1, 0.0) == 0.0
        assert t.earliest_start(2, 0.0) == 2.0
        assert t.earliest_start(3, 0.0) == 4.0


class TestPlatformTimeline:
    def test_one_timeline_per_cluster(self, small_platform):
        pt = PlatformTimeline(small_platform)
        assert len(pt.timelines()) == len(small_platform)
        for cluster in small_platform:
            assert pt.timeline(cluster.name).num_processors == cluster.num_processors

    def test_unknown_cluster(self, small_platform):
        pt = PlatformTimeline(small_platform)
        with pytest.raises(MappingError):
            pt.timeline("nope")

    def test_reset(self, small_platform):
        pt = PlatformTimeline(small_platform)
        name = small_platform.cluster_names()[0]
        pt.timeline(name).reserve(1, 0.0, 10.0)
        pt.reset()
        assert pt.timeline(name).earliest_start(1, 0.0) == 0.0
