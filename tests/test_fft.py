"""Tests for the FFT PTG generator."""

import pytest

from repro.dag.fft import (
    PAPER_FFT_SIZES,
    fft_task_count,
    generate_fft_ptg,
    paper_fft_workload,
)
from repro.exceptions import ConfigurationError


class TestTaskCount:
    @pytest.mark.parametrize("n,expected", [(4, 15), (8, 39), (16, 95)])
    def test_formula(self, n, expected):
        assert fft_task_count(n) == expected

    def test_generated_graph_matches_formula(self):
        for n in PAPER_FFT_SIZES:
            g = generate_fft_ptg(n, rng=0)
            assert len(g.real_tasks()) == fft_task_count(n)

    @pytest.mark.parametrize("n", [0, 1, 3, 6, -4])
    def test_invalid_sizes(self, n):
        with pytest.raises(ConfigurationError):
            fft_task_count(n)


class TestStructure:
    def test_valid_single_entry_exit(self):
        g = generate_fft_ptg(8, rng=1)
        g.validate()

    def test_regularity_same_cost_per_level(self):
        g = generate_fft_ptg(8, rng=2)
        by_level = g.tasks_by_level()
        for level, tids in by_level.items():
            flops = {g.task(t).flops for t in tids if not g.task(t).is_synthetic}
            assert len(flops) <= 1, f"level {level} has heterogeneous costs"

    def test_depth_grows_with_size(self):
        d4 = generate_fft_ptg(4, rng=0).depth
        d16 = generate_fft_ptg(16, rng=0).depth
        assert d16 > d4

    def test_butterfly_level_width_equals_points(self):
        n = 8
        g = generate_fft_ptg(n, rng=0)
        assert g.max_width() == n

    def test_deterministic_given_parameters(self):
        a = generate_fft_ptg(8, rng=5)
        b = generate_fft_ptg(8, rng=5)
        assert a.edges() == b.edges()
        assert [t.flops for t in a.tasks()] == [t.flops for t in b.tasks()]

    def test_explicit_parameters(self):
        g = generate_fft_ptg(4, data_elements=8e6, alpha=0.1, a_factor=64, name="fft-custom")
        assert g.name == "fft-custom"
        assert all(t.alpha == 0.1 for t in g.real_tasks())

    @pytest.mark.parametrize(
        "kwargs",
        [dict(data_elements=-1), dict(alpha=2.0), dict(a_factor=0)],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            generate_fft_ptg(4, rng=0, **kwargs)


class TestWorkload:
    def test_sizes_from_paper_set(self):
        workload = paper_fft_workload(0, n_ptgs=8)
        assert len(workload) == 8
        for ptg in workload:
            assert len(ptg.real_tasks()) in {fft_task_count(n) for n in PAPER_FFT_SIZES}

    def test_unique_names(self):
        workload = paper_fft_workload(0, n_ptgs=5)
        assert len({p.name for p in workload}) == 5

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            paper_fft_workload(0, n_ptgs=0)
