"""Tests for the campaign shard decomposition."""

import pytest

from repro.campaigns.shards import campaign_signature, make_shards
from repro.experiments.runner import CampaignConfig, run_campaign
from repro.platform import grid5000
from repro.platform.builder import heterogeneous_platform


@pytest.fixture(scope="module")
def platform():
    return heterogeneous_platform((10, 14), (3.0, 4.0), name="shard-platform")


@pytest.fixture(scope="module")
def config(platform):
    return CampaignConfig(
        family="random",
        ptg_counts=(2, 3),
        workloads_per_point=2,
        platforms=(platform,),
        strategy_names=("S", "ES"),
        base_seed=11,
        max_tasks=8,
    )


class TestMakeShards:
    def test_one_shard_per_workload_platform_pair(self, config):
        shards = make_shards(config)
        assert len(shards) == 2 * 2  # two PTG counts x two workloads x one platform
        assert [s.index for s in shards] == list(range(len(shards)))

    def test_campaign_order_matches_serial_runner(self, config):
        """Shards enumerate in the order run_campaign visits experiments."""
        shards = make_shards(config)
        serial = run_campaign(config)
        assert [s.spec.label() for s in shards] == [
            e.workload for e in serial.experiments
        ]
        assert [s.platform.name for s in shards] == [
            e.platform for e in serial.experiments
        ]

    def test_strategy_names_resolved_from_family(self):
        shards = make_shards(CampaignConfig(family="strassen", ptg_counts=(2,),
                                            workloads_per_point=1))
        assert all("width" not in n for n in shards[0].strategy_names)

    def test_labels_are_readable(self, config):
        shard = make_shards(config)[0]
        assert shard.spec.label() in shard.label()
        assert shard.platform.name in shard.label()


class TestShardKeys:
    def test_keys_are_unique_within_a_campaign(self, config):
        shards = make_shards(config)
        assert len({s.key() for s in shards}) == len(shards)

    def test_keys_are_stable_across_processes(self, config):
        """Same config -> same keys, independent of object identity."""
        first = [s.key() for s in make_shards(config)]
        second = [s.key() for s in make_shards(config)]
        assert first == second

    def test_keys_ignore_platform_object_identity(self):
        a = CampaignConfig(ptg_counts=(2,), workloads_per_point=1,
                           platforms=(grid5000.lille(),), strategy_names=("S",))
        b = CampaignConfig(ptg_counts=(2,), workloads_per_point=1,
                           platforms=(grid5000.lille(),), strategy_names=("S",))
        assert make_shards(a)[0].key() == make_shards(b)[0].key()

    def test_keys_depend_on_content(self, config, platform):
        base = make_shards(config)[0].key()
        reseeded = CampaignConfig(
            family="random", ptg_counts=(2, 3), workloads_per_point=2,
            platforms=(platform,), strategy_names=("S", "ES"),
            base_seed=12, max_tasks=8,
        )
        assert make_shards(reseeded)[0].key() != base
        restrategied = CampaignConfig(
            family="random", ptg_counts=(2, 3), workloads_per_point=2,
            platforms=(platform,), strategy_names=("ES",),
            base_seed=11, max_tasks=8,
        )
        assert make_shards(restrategied)[0].key() != base

    def test_campaign_signature_detects_config_changes(self, config, platform):
        signature = campaign_signature(make_shards(config))
        assert signature == campaign_signature(make_shards(config))
        other = CampaignConfig(
            family="random", ptg_counts=(2,), workloads_per_point=2,
            platforms=(platform,), strategy_names=("S", "ES"),
            base_seed=11, max_tasks=8,
        )
        assert campaign_signature(make_shards(other)) != signature
